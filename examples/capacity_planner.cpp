/**
 * @file
 * Capacity planner: how much installed DRAM does a workload need when
 * main memory is compressed?
 *
 * Sweeps the machine-memory budget from 50% to 100% of the workload
 * footprint and reports the paging slowdown for an uncompressed
 * system vs Compresso (whose effective budget is scaled by its
 * real-time compression ratio, exactly as the paper's
 * memory-capacity-impact methodology does with cgroups). The
 * crossover shows how much DRAM compression lets you shave while
 * holding performance.
 *
 * Build & run:  ./build/examples/capacity_planner [benchmark]
 */

#include <cstdio>
#include <string>

#include "capacity/capacity_eval.h"

using namespace compresso;

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "xalancbmk";
    const WorkloadProfile &prof = profileByName(bench);
    std::printf("Capacity planning for '%s' (footprint %u pages = %u MB "
                "virtual)\n\n",
                prof.name.c_str(), prof.pages,
                prof.pages * 4 / 1024);

    std::printf("%8s | %22s | %22s\n", "budget", "uncompressed",
                "compresso");
    std::printf("%8s | %10s %11s | %10s %11s\n", "(% fp)", "slowdown",
                "faults", "slowdown", "faults");

    for (double frac : {1.0, 0.9, 0.8, 0.7, 0.6, 0.5}) {
        CapacitySpec spec;
        spec.workloads = {bench};
        spec.mem_frac = frac;
        spec.touches_per_core = 80000;

        spec.kind = McKind::kUncompressed;
        CapacityResult u = evalCapacity(spec);
        spec.kind = McKind::kCompresso;
        CapacityResult c = evalCapacity(spec);

        std::printf("%7.0f%% | %9.2fx %11llu | %9.2fx %11llu%s\n",
                    frac * 100, u.slowdown,
                    (unsigned long long)0 + u.faults, c.slowdown,
                    (unsigned long long)0 + c.faults,
                    c.stalled ? "  (thrashing)" : "");
    }

    CapacitySpec spec;
    spec.workloads = {bench};
    spec.kind = McKind::kCompresso;
    spec.touches_per_core = 20000;
    CapacityResult r = evalCapacity(spec);
    std::printf("\nAverage compression ratio during the run: %.2fx\n",
                r.avg_ratio);
    std::printf("Rule of thumb: Compresso sustains unconstrained-level "
                "performance down to roughly\n%.0f%% of the footprint "
                "(1/ratio), where the uncompressed system is already "
                "paging.\n",
                100.0 / r.avg_ratio);
    return 0;
}
