/**
 * @file
 * Graph analytics under memory compression — the datacenter scenario
 * from the paper's introduction.
 *
 * Runs the Graph500 workload (BFS-like: zero-initialized frontier
 * arrays streamed full of edges, pointer-heavy adjacency data, poor
 * page locality) on three systems — uncompressed, the OS-aware LCP
 * baseline, and Compresso — through the full system model (4-wide
 * core, L1/L2/L3, DDR4), and reports the metrics the paper's
 * evaluation revolves around: compression ratio, extra data movement,
 * metadata cache behaviour, and relative performance.
 *
 * Build & run:  ./build/examples/graph_analytics
 */

#include <cstdio>

#include "sim/runner.h"

using namespace compresso;

namespace {

RunResult
evaluate(McKind kind)
{
    RunSpec spec;
    spec.kind = kind;
    spec.workloads = {"Graph500"};
    spec.refs_per_core = 120000;
    spec.warmup_refs = 12000;
    return runSystem(spec);
}

} // namespace

int
main()
{
    std::printf("Simulating Graph500 on three memory systems "
                "(this takes ~10s)...\n\n");

    RunResult base = evaluate(McKind::kUncompressed);
    RunResult lcp = evaluate(McKind::kLcp);
    RunResult cmp = evaluate(McKind::kCompresso);

    std::printf("%-28s %14s %14s %14s\n", "", "uncompressed", "lcp",
                "compresso");
    std::printf("%-28s %14.3f %14.3f %14.3f\n",
                "relative performance", 1.0, lcp.perf / base.perf,
                cmp.perf / base.perf);
    std::printf("%-28s %14.2f %14.2f %14.2f\n", "compression ratio",
                base.comp_ratio, lcp.comp_ratio, cmp.comp_ratio);
    std::printf("%-28s %13.1f%% %13.1f%% %13.1f%%\n",
                "extra accesses (total)", 100 * base.extra_total,
                100 * lcp.extra_total, 100 * cmp.extra_total);
    std::printf("%-28s %13.1f%% %13.1f%% %13.1f%%\n",
                "  - split lines", 100 * base.extra_split,
                100 * lcp.extra_split, 100 * cmp.extra_split);
    std::printf("%-28s %13.1f%% %13.1f%% %13.1f%%\n",
                "  - overflow handling", 100 * base.extra_overflow,
                100 * lcp.extra_overflow, 100 * cmp.extra_overflow);
    std::printf("%-28s %13.1f%% %13.1f%% %13.1f%%\n",
                "  - metadata", 100 * base.extra_metadata,
                100 * lcp.extra_metadata, 100 * cmp.extra_metadata);
    std::printf("%-28s %14s %13.1f%% %13.1f%%\n",
                "metadata cache hit rate", "-", 100 * lcp.md_hit_rate,
                100 * cmp.md_hit_rate);
    std::printf("%-28s %14s %13.1f%% %13.1f%%\n",
                "zero-line shortcuts", "-",
                100 * lcp.zero_access_frac, 100 * cmp.zero_access_frac);

    double extra_memory =
        (cmp.comp_ratio - 1.0) * 100.0;
    std::printf("\nCompresso stores this graph in %.0f%% less machine "
                "memory (%.2fx effective capacity),\n",
                100.0 * (1.0 - 1.0 / cmp.comp_ratio), cmp.comp_ratio);
    std::printf("which a memory-constrained deployment converts into "
                "fewer page faults\n(see examples/capacity_planner.cpp "
                "and bench/tab2_capacity_sweep).\n");
    (void)extra_memory;
    return 0;
}
