/**
 * @file
 * Multi-tenant service mode: one shared Compresso controller serving N
 * tenant sessions with QoS isolation (DESIGN.md §17).
 *
 * Carves the OSPA space into per-tenant partitions, streams each
 * tenant's synthetic workload (or replayed trace) through the shared
 * compressed-memory stack, and enforces the isolation contract:
 * per-tenant inflation budgets, admission shedding of over-budget
 * tenants under pressure, tenant-scoped ballooning that can only ever
 * reclaim the victim's own pages, and a partition audit over every
 * backed page. Exit 0 means every gate held: zero silent corruptions,
 * zero invariant-audit violations, zero partition-audit violations.
 *
 * Build & run:  ./build/examples/tenant_service
 *               ./build/examples/tenant_service --tenants 8 --jobs 2 \
 *                   [--rounds N] [--refs N] [--seed N] \
 *                   [--adversary I] [--rotate N] [--pages N] \
 *                   [--out svc.json] [--postmortem <dir>]
 *
 * --adversary I makes tenant I hostile (page-random incompressible
 * writes across its partition); --rotate N instead rotates the hostile
 * role across tenants every N rounds. --out writes the merged
 * compresso-service-v1 document (byte-identical at any --jobs count)
 * for tools/obs_report.py; --postmortem writes tenant-tagged
 * compresso-postmortem-v1 bundles for tools/postmortem_report.py.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/service.h"
#include "service/service_export.h"
#include "sim/postmortem_export.h"

using namespace compresso;

namespace {

/** Default tenant personalities: a compressibility spread (Fig. 2). */
const char *const kProfiles[] = {"gcc",     "mcf",        "bzip2",
                                 "gromacs", "h264ref",    "libquantum",
                                 "astar",   "Pagerank"};

void
printTenant(const TenantReport &t)
{
    std::printf("  %-10s %-11s %s refs %7llu shed %5llu | p99 %5llu "
                "max %6llu | md %7llu denied %4llu+%-4llu | ratio "
                "%.2f eff %.2f | lost %4llu drop %3llu corrupt %llu\n",
                t.name.c_str(), t.profile.c_str(),
                t.adversary ? "ADV " : "    ",
                (unsigned long long)t.refs, (unsigned long long)t.shed,
                (unsigned long long)t.lat_p99,
                (unsigned long long)t.lat_max,
                (unsigned long long)t.md_ops,
                (unsigned long long)t.gov_denied,
                (unsigned long long)t.inflation_denied, t.comp_ratio,
                t.effective_ratio, (unsigned long long)t.pages_lost,
                (unsigned long long)t.oom_dropped_writes,
                (unsigned long long)t.verify_failures);
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned tenants = 8, jobs = 1;
    uint64_t rounds = 32, refs = 512, seed = 1, pages = 192;
    uint64_t rotate = 0;
    long adversary = -1;
    std::string out, pm_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tenants") == 0 && i + 1 < argc)
            tenants = unsigned(std::strtoul(argv[++i], nullptr, 0));
        else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc)
            rounds = std::strtoull(argv[++i], nullptr, 0);
        else if (std::strcmp(argv[i], "--refs") == 0 && i + 1 < argc)
            refs = std::strtoull(argv[++i], nullptr, 0);
        else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
            seed = std::strtoull(argv[++i], nullptr, 0);
        else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = unsigned(std::strtoul(argv[++i], nullptr, 0));
        else if (std::strcmp(argv[i], "--pages") == 0 && i + 1 < argc)
            pages = std::strtoull(argv[++i], nullptr, 0);
        else if (std::strcmp(argv[i], "--rotate") == 0 && i + 1 < argc)
            rotate = std::strtoull(argv[++i], nullptr, 0);
        else if (std::strcmp(argv[i], "--adversary") == 0 &&
                 i + 1 < argc)
            adversary = std::strtol(argv[++i], nullptr, 0);
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out = argv[++i];
        else if (std::strcmp(argv[i], "--postmortem") == 0 &&
                 i + 1 < argc)
            pm_dir = argv[++i];
        else {
            std::fprintf(
                stderr,
                "usage: %s [--tenants N] [--rounds N] [--refs N] "
                "[--seed N] [--jobs N] [--pages N] [--adversary I] "
                "[--rotate N] [--out svc.json] [--postmortem <dir>]\n",
                argv[0]);
            return 2;
        }
    }
    if (tenants == 0)
        tenants = 1;

    ServiceConfig cfg;
    cfg.seed = seed;
    cfg.rounds = rounds;
    cfg.refs_per_round = refs;
    cfg.jobs = jobs;
    cfg.postmortem = !pm_dir.empty();
    cfg.adversary_rotate_every = rotate;
    // Small metadata cache: the md-traffic fairness dimension only
    // shows when misses are common.
    cfg.compresso.mdcache = MetadataCacheConfig{8 * 1024, 8, false};
    for (unsigned t = 0; t < tenants; ++t) {
        TenantSpec spec;
        spec.name = "tenant" + std::to_string(t);
        spec.pages = pages;
        spec.profile = kProfiles[t % (sizeof(kProfiles) /
                                      sizeof(kProfiles[0]))];
        spec.adversary = long(t) == adversary;
        cfg.tenants.push_back(spec);
    }

    std::printf("service: %u tenants x %llu pages, %llu rounds x %llu "
                "refs, seed %llu, jobs %u\n\n",
                tenants, (unsigned long long)pages,
                (unsigned long long)rounds, (unsigned long long)refs,
                (unsigned long long)seed, jobs);

    ServiceResult res = runService(cfg);

    for (const TenantReport &t : res.tenants)
        printTenant(t);
    std::printf("\npressure: end %s max %u | oom %llu (rescued %llu) "
                "| rebalances %llu (%llu pages)\n",
                res.level_end.c_str(), res.max_level,
                (unsigned long long)res.oom_events,
                (unsigned long long)res.oom_rescued,
                (unsigned long long)res.rebalances,
                (unsigned long long)res.rebalance_pages);
    std::printf("isolation: cross-partition refusals %llu (balloon "
                "%llu, os %llu) | audit %llu partition-audit %llu | "
                "silent corruptions %llu\n",
                (unsigned long long)res.cross_partition_attempts,
                (unsigned long long)res.balloon_partition_rejects,
                (unsigned long long)res.os_window_rejects,
                (unsigned long long)res.audit_violations,
                (unsigned long long)res.partition_audit_violations,
                (unsigned long long)res.silent_corruptions);
    std::printf("capacity: ratio %.2f effective %.2f over %llu refs\n",
                res.comp_ratio, res.effective_ratio,
                (unsigned long long)res.total_refs);

    if (!pm_dir.empty()) {
        int n = writePostmortemBundles(pm_dir, "tenant_service",
                                       "postmortem-service-",
                                       res.postmortems);
        if (n < 0) {
            std::fprintf(stderr,
                         "cannot write post-mortem bundles under %s\n",
                         pm_dir.c_str());
            return 2;
        }
        std::printf("wrote %d post-mortem bundle%s under %s (%s)\n", n,
                    n == 1 ? "" : "s", pm_dir.c_str(),
                    kPostmortemJsonSchema);
    }
    if (!out.empty()) {
        if (!writeServiceJson(out, "tenant_service", res)) {
            std::fprintf(stderr, "cannot write %s\n", out.c_str());
            return 2;
        }
        std::printf("wrote %s (%s)\n", out.c_str(), kServiceJsonSchema);
    }

    bool ok = res.silent_corruptions == 0 &&
              res.audit_violations == 0 &&
              res.partition_audit_violations == 0;
    std::printf("\nservice %s\n", ok ? "PASSED" : "FAILED");
    return ok ? 0 : 1;
}
