/**
 * @file
 * Fault-injection campaign across the compressed-memory pipeline.
 *
 * Part 1 (the acceptance demo) runs a mixed workload on Compresso with
 * a realistic 1e-6 upset-per-bit-per-exposure rate and SECDED + the
 * degradation ladder enabled, and checks the two properties the
 * subsystem exists to provide:
 *   - no silent corruptions (everything beyond SECDED is by
 *     construction absent at this rate) and no open invariant
 *     violations after recovery;
 *   - determinism: the same seed reproduces the identical
 *     ReliabilityReport.
 * It then reruns the same seed with recovery disabled and shows the
 * alternative: detected faults retire lines and whole pages instead of
 * being rebuilt. The process exits nonzero if any check fails, so CI
 * can run it as a self-checking smoke test.
 *
 * Part 2 sweeps the fault rate and compares Compresso against the
 * uncompressed baseline: compression concentrates more data behind
 * fewer exposed blocks and adds a metadata region, so its fault
 * surface differs — the sweep prints corrected/DUE/silent counts and
 * the pages the ladder had to degrade.
 *
 * Build & run:  ./build/examples/fault_campaign
 */

#include <cstdio>

#include "sim/run_export.h"
#include "sim/runner.h"

using namespace compresso;

namespace {

int g_failures = 0;
RunSink g_sink;

/** runSystem via the --json sink, with a campaign-specific label. */
RunResult
runLogged(RunSpec spec, const std::string &label)
{
    g_sink.apply(spec);
    RunResult r = runSystem(spec);
    r.label = label;
    g_sink.add(r);
    return r;
}

void
check(bool ok, const char *what)
{
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok)
        ++g_failures;
}

RunSpec
campaignSpec(McKind kind, double bit_rate, bool recover)
{
    RunSpec spec;
    spec.kind = kind;
    spec.workloads = {"mcf"}; // metadata thrasher: exercises the rebuild rung
    spec.refs_per_core = 80000;
    spec.warmup_refs = 8000;
    spec.fault.seed = 0xdeadfa11;
    spec.fault.data_bit_rate = bit_rate;
    spec.fault.meta_bit_rate = bit_rate;
    spec.fault.double_bit_frac = 0.25; // field MBU-heavy mix
    spec.fault.ecc = true;
    spec.fault.recover = recover;
    return spec;
}

uint64_t
degraded(const ReliabilityReport &r)
{
    return r.lines_poisoned + r.pages_poisoned + r.meta_rebuilds +
           r.pages_inflated_safety;
}

} // namespace

int
main(int argc, char **argv)
{
    g_sink.init(argc, argv, "fault_campaign");

    // -----------------------------------------------------------------
    // Part 1: acceptance campaign at 1e-6/bit.
    // -----------------------------------------------------------------
    std::printf("=== Compresso, 1e-6 upsets/bit, SECDED + recovery ===\n");
    RunSpec spec = campaignSpec(McKind::kCompresso, 1e-6, true);
    RunResult on = runLogged(spec, "recovery-on");
    std::printf("%s", on.reliability.summary().c_str());

    check(on.reliability.injected() > 0, "faults were injected");
    check(on.reliability.silent_corruptions == 0,
          "zero silent corruptions (SECDED covers the injected mix)");
    check(on.audit_violations == 0,
          "zero open invariant violations after recovery");
    check(on.reliability.detected_uncorrectable > 0,
          "campaign produced detected-uncorrectable faults");
    check(degraded(on.reliability) > 0,
          "the degradation ladder was exercised");

    RunResult again = runLogged(spec, "recovery-on/repeat");
    check(again.reliability == on.reliability,
          "identical seed reproduces the identical ReliabilityReport");

    std::printf("\n=== same seed, recovery disabled ===\n");
    RunResult off = runLogged(campaignSpec(McKind::kCompresso, 1e-6,
                                           /*recover=*/false),
                              "recovery-off");
    std::printf("%s", off.reliability.summary().c_str());
    check(off.reliability.lines_poisoned +
                  off.reliability.pages_poisoned > 0,
          "without recovery, detected faults retire lines/pages");
    check(off.reliability.meta_rebuilds == 0 &&
              off.reliability.pages_inflated_safety == 0,
          "without recovery, nothing is rebuilt or inflated");

    // -----------------------------------------------------------------
    // Part 2: rate sweep, Compresso vs uncompressed.
    // -----------------------------------------------------------------
    std::printf("\n=== fault-rate sweep (SECDED + recovery) ===\n");
    std::printf("%-14s %-14s %10s %10s %8s %10s %9s\n", "rate",
                "system", "corrected", "DUE", "silent", "degraded",
                "SDC/Mref");
    const double rates[] = {1e-7, 1e-6, 1e-5};
    for (double rate : rates) {
        for (McKind kind :
             {McKind::kUncompressed, McKind::kCompresso}) {
            const char *sys_name = kind == McKind::kCompresso
                                       ? "compresso"
                                       : "uncompressed";
            char label[64];
            std::snprintf(label, sizeof label, "sweep/%.0e/%s", rate,
                          sys_name);
            RunResult r =
                runLogged(campaignSpec(kind, rate, true), label);
            double mrefs =
                double(spec.refs_per_core + spec.warmup_refs) / 1e6;
            std::printf("%-14.0e %-14s %10llu %10llu %8llu %10llu "
                        "%9.2f\n",
                        rate, sys_name,
                        (unsigned long long)r.reliability.corrected,
                        (unsigned long long)
                            r.reliability.detected_uncorrectable,
                        (unsigned long long)
                            r.reliability.silent_corruptions,
                        (unsigned long long)degraded(r.reliability),
                        double(r.reliability.silent_corruptions) /
                            mrefs);
            if (kind == McKind::kCompresso) {
                check(r.audit_violations == 0,
                      "compresso audit stays clean at this rate");
            }
        }
    }

    std::printf("\n%s\n", g_failures == 0
                              ? "All fault-campaign checks passed."
                              : "FAULT CAMPAIGN CHECKS FAILED");
    int json_rc = g_sink.finish();
    return g_failures == 0 ? json_rc : 1;
}
