/**
 * @file
 * Fault-injection campaign across the compressed-memory pipeline.
 *
 * Part 1 (the acceptance demo) runs a mixed workload on Compresso with
 * a realistic 1e-6 upset-per-bit-per-exposure rate and SECDED + the
 * degradation ladder enabled, and checks the two properties the
 * subsystem exists to provide:
 *   - no silent corruptions (everything beyond SECDED is by
 *     construction absent at this rate) and no open invariant
 *     violations after recovery;
 *   - determinism: the same seed reproduces the identical
 *     ReliabilityReport.
 * It then reruns the same seed with recovery disabled and shows the
 * alternative: detected faults retire lines and whole pages instead of
 * being rebuilt. The process exits nonzero if any check fails, so CI
 * can run it as a self-checking smoke test.
 *
 * Part 2 sweeps the fault rate and compares Compresso against the
 * uncompressed baseline: compression concentrates more data behind
 * fewer exposed blocks and adds a metadata region, so its fault
 * surface differs — the sweep prints corrected/DUE/silent counts and
 * the pages the ladder had to degrade.
 *
 * All eleven configurations are independent simulations: they are
 * queued as one campaign and sharded across `--jobs` workers (the
 * determinism checks hold regardless of worker count — that is the
 * point of the engine).
 *
 * Build & run:  ./build/examples/fault_campaign
 */

#include <cstdio>

#include "exec/campaign_sink.h"
#include "sim/run_export.h"
#include "sim/runner.h"

using namespace compresso;

namespace {

int g_failures = 0;
RunSink g_sink;

void
check(bool ok, const char *what)
{
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok)
        ++g_failures;
}

RunSpec
campaignSpec(McKind kind, double bit_rate, bool recover)
{
    RunSpec spec;
    spec.kind = kind;
    spec.workloads = {"mcf"}; // metadata thrasher: exercises the rebuild rung
    spec.refs_per_core = 80000;
    spec.warmup_refs = 8000;
    spec.fault.seed = 0xdeadfa11;
    spec.fault.data_bit_rate = bit_rate;
    spec.fault.meta_bit_rate = bit_rate;
    spec.fault.double_bit_frac = 0.25; // field MBU-heavy mix
    spec.fault.ecc = true;
    spec.fault.recover = recover;
    return spec;
}

/** Queue a run with the CLI-selected observability stamped on. */
uint32_t
add(Campaign &campaign, const std::string &label, RunSpec spec)
{
    g_sink.apply(spec);
    return campaign.add(label, std::move(spec));
}

uint64_t
degraded(const ReliabilityReport &r)
{
    return r.lines_poisoned + r.pages_poisoned + r.meta_rebuilds +
           r.pages_inflated_safety;
}

} // namespace

int
main(int argc, char **argv)
{
    g_sink.init(argc, argv, "fault_campaign");

    // Queue everything up front; the checks below read the finished
    // records.
    Campaign campaign("fault_campaign");
    uint32_t j_on = add(campaign, "recovery-on",
                        campaignSpec(McKind::kCompresso, 1e-6, true));
    uint32_t j_again = add(campaign, "recovery-on/repeat",
                           campaignSpec(McKind::kCompresso, 1e-6, true));
    uint32_t j_off =
        add(campaign, "recovery-off",
            campaignSpec(McKind::kCompresso, 1e-6, /*recover=*/false));

    const double rates[] = {1e-7, 1e-6, 1e-5};
    struct SweepJob
    {
        double rate;
        McKind kind;
        uint32_t idx;
    };
    std::vector<SweepJob> sweep;
    for (double rate : rates) {
        for (McKind kind :
             {McKind::kUncompressed, McKind::kCompresso}) {
            const char *sys_name = kind == McKind::kCompresso
                                       ? "compresso"
                                       : "uncompressed";
            char label[64];
            std::snprintf(label, sizeof label, "sweep/%.0e/%s", rate,
                          sys_name);
            sweep.push_back(
                {rate, kind,
                 add(campaign, label, campaignSpec(kind, rate, true))});
        }
    }

    CampaignPolicy policy;
    policy.jobs = g_sink.jobs();
    CampaignResult res = runCampaignWithSink(campaign, g_sink, policy);
    if (!res.allOk()) {
        std::printf("FAULT CAMPAIGN CHECKS FAILED (jobs failed)\n");
        return 1;
    }

    // -----------------------------------------------------------------
    // Part 1: acceptance campaign at 1e-6/bit.
    // -----------------------------------------------------------------
    std::printf("=== Compresso, 1e-6 upsets/bit, SECDED + recovery ===\n");
    const RunResult &on = res.records[j_on].run();
    std::printf("%s", on.reliability.summary().c_str());

    check(on.reliability.injected() > 0, "faults were injected");
    check(on.reliability.silent_corruptions == 0,
          "zero silent corruptions (SECDED covers the injected mix)");
    check(on.audit_violations == 0,
          "zero open invariant violations after recovery");
    check(on.reliability.detected_uncorrectable > 0,
          "campaign produced detected-uncorrectable faults");
    check(degraded(on.reliability) > 0,
          "the degradation ladder was exercised");

    const RunResult &again = res.records[j_again].run();
    check(again.reliability == on.reliability,
          "identical seed reproduces the identical ReliabilityReport");

    std::printf("\n=== same seed, recovery disabled ===\n");
    const RunResult &off = res.records[j_off].run();
    std::printf("%s", off.reliability.summary().c_str());
    check(off.reliability.lines_poisoned +
                  off.reliability.pages_poisoned > 0,
          "without recovery, detected faults retire lines/pages");
    check(off.reliability.meta_rebuilds == 0 &&
              off.reliability.pages_inflated_safety == 0,
          "without recovery, nothing is rebuilt or inflated");

    // -----------------------------------------------------------------
    // Part 2: rate sweep, Compresso vs uncompressed.
    // -----------------------------------------------------------------
    std::printf("\n=== fault-rate sweep (SECDED + recovery) ===\n");
    std::printf("%-14s %-14s %10s %10s %8s %10s %9s\n", "rate",
                "system", "corrected", "DUE", "silent", "degraded",
                "SDC/Mref");
    const double mrefs = double(80000 + 8000) / 1e6;
    for (const SweepJob &job : sweep) {
        const char *sys_name = job.kind == McKind::kCompresso
                                   ? "compresso"
                                   : "uncompressed";
        const RunResult &r = res.records[job.idx].run();
        std::printf("%-14.0e %-14s %10llu %10llu %8llu %10llu "
                    "%9.2f\n",
                    job.rate, sys_name,
                    (unsigned long long)r.reliability.corrected,
                    (unsigned long long)
                        r.reliability.detected_uncorrectable,
                    (unsigned long long)
                        r.reliability.silent_corruptions,
                    (unsigned long long)degraded(r.reliability),
                    double(r.reliability.silent_corruptions) / mrefs);
        if (job.kind == McKind::kCompresso) {
            check(r.audit_violations == 0,
                  "compresso audit stays clean at this rate");
        }
    }

    std::printf("\n%s\n", g_failures == 0
                              ? "All fault-campaign checks passed."
                              : "FAULT CAMPAIGN CHECKS FAILED");
    int json_rc = g_sink.finish();
    return g_failures == 0 ? json_rc : 1;
}
