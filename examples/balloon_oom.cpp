/**
 * @file
 * The OS-transparent out-of-memory flow (Sec. V-B, Fig. 8).
 *
 * Compresso promises the OS more memory than is installed. If the
 * data turns out less compressible than promised, machine memory runs
 * out while the OS still believes it has free pages. The paper's
 * answer: reuse the guest-ballooning facility — a driver demands
 * pages through the regular allocation path, the OS reclaims cold
 * pages via its normal LRU, and the freed OSPA pages are invalidated
 * in the controller, releasing their machine chunks.
 *
 * This example provisions a small machine (4 MB of chunks), promises
 * the OS 8 MB, fills memory with well-compressing data, then degrades
 * compressibility until the balloon has to step in.
 *
 * Build & run:  ./build/examples/balloon_oom
 */

#include <cstdio>

#include "core/compresso_controller.h"
#include "os/balloon.h"
#include "workloads/datagen.h"

using namespace compresso;

namespace {

void
writePage(CompressoController &mc, PageNum page, DataClass cls)
{
    Line data;
    for (unsigned l = 0; l < kLinesPerPage; ++l) {
        generateLine(cls, Rng::mix(page, l, unsigned(cls)), data);
        McTrace tr;
        mc.writebackLine(Addr(page) * kPageBytes + l * kLineBytes, data,
                         tr);
    }
}

void
report(const char *stage, CompressoController &mc, SimOs &os,
       BalloonDriver &balloon)
{
    std::printf("%-34s | machine used %4llu KB free %4llu KB | "
                "OS resident %4llu pages | balloon %llu\n",
                stage,
                (unsigned long long)mc.mpaDataBytes() / 1024,
                (unsigned long long)(uint64_t(4096) * 1024 -
                                     mc.mpaDataBytes()) /
                    1024,
                (unsigned long long)os.residentPages(),
                (unsigned long long)balloon.heldPages());
}

} // namespace

int
main()
{
    // 4 MB installed; the OS is promised 8 MB (2048 OSPA pages).
    constexpr uint64_t kInstalled = uint64_t(4) << 20;
    constexpr uint64_t kPromisedPages = 2048;

    CompressoConfig cfg;
    cfg.installed_bytes = kInstalled;
    CompressoController mc(cfg);
    SimOs os(kPromisedPages);
    BalloonDriver balloon(os, mc);

    std::printf("Installed machine memory: 4 MB; promised to the OS: "
                "8 MB (relying on ~2x compression)\n\n");

    // Phase 1: the OS uses 1500 pages of nicely-compressing data
    // (6 MB of OSPA in ~1.5 MB of machine memory).
    for (PageNum p = 0; p < 1500; ++p) {
        os.touch(p, true);
        writePage(mc, p, DataClass::kDeltaInt);
    }
    report("phase 1: 1500 compressible pages", mc, os, balloon);

    // Phase 2: a third of the data is overwritten with incompressible
    // values; machine usage balloons.
    for (PageNum p = 0; p < 500; ++p) {
        os.touch(p, true);
        writePage(mc, p, DataClass::kRandom);
    }
    report("phase 2: 500 pages turn random", mc, os, balloon);

    // Phase 3: the watermark check sees free machine memory below the
    // reserve and asks the balloon driver to make room. The driver
    // inflates; the OS reclaims cold pages; the controller invalidates
    // them and their chunks return to the free list.
    uint64_t free_chunks =
        (kInstalled - mc.mpaDataBytes()) / kChunkBytes;
    uint64_t reclaimed = balloon.balance(free_chunks,
                                         /*reserve_chunks=*/4096);
    std::printf("\nballoon.balance(): reclaimed %llu cold OSPA pages "
                "from the OS\n\n",
                (unsigned long long)reclaimed);
    report("phase 3: after ballooning", mc, os, balloon);

    // Phase 4: pressure relieved (data freed / recompressed), the
    // balloon deflates and the OS gets its pages back.
    balloon.deflate(reclaimed);
    report("phase 4: balloon deflated", mc, os, balloon);

    std::printf("\nThroughout, the OS ran its stock reclaim path — no "
                "compression awareness needed\n(the paper's Tab. I "
                "'OS-transparent' column).\n");
    return 0;
}
