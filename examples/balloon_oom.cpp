/**
 * @file
 * The OS-transparent out-of-memory flow (Sec. V-B, Fig. 8) — now
 * self-checking, and the front door to the chaos/soak harness
 * (DESIGN.md §14).
 *
 * Compresso promises the OS more memory than is installed. If the
 * data turns out less compressible than promised, machine memory runs
 * out while the OS still believes it has free pages. The paper's
 * answer: reuse the guest-ballooning facility — a driver demands
 * pages through the regular allocation path, the OS reclaims cold
 * pages via its normal LRU, and the freed OSPA pages are invalidated
 * in the controller, releasing their machine chunks.
 *
 * Default mode walks the classic four-phase balloon story, then runs
 * a short ChaosEngine rotation (collapse storm, balloon thrash, swap
 * storm, fault burst...) against the Compresso controller with the
 * full pressure stack live, and *asserts* the soak gates: zero silent
 * corruptions, zero invariant-audit violations, bounded p99 stall.
 * A non-zero exit means a gate failed.
 *
 * Build & run:  ./build/examples/balloon_oom
 *               ./build/examples/balloon_oom --soak [--refs N]
 *                   [--seed N] [--jobs N] [--out soak.json]
 *                   [--postmortem <dir>]
 *
 * --soak runs the full rotation on all four compressed controllers
 * (sharded over the campaign engine) and writes the versioned
 * compresso-soak-v1 document for tools/obs_report.py.
 *
 * --postmortem <dir> attaches the anomaly flight recorder (DESIGN.md
 * §16) to every chaos run and writes one compresso-postmortem-v1
 * document per captured bundle — at least one forced bundle per
 * injected storm — for tools/postmortem_report.py. Works in both
 * modes; bundles are byte-identical at any --jobs count.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/compresso_controller.h"
#include "os/balloon.h"
#include "pressure/chaos.h"
#include "pressure/soak_export.h"
#include "sim/postmortem_export.h"
#include "workloads/datagen.h"

using namespace compresso;

namespace {

void
writePage(CompressoController &mc, PageNum page, DataClass cls)
{
    Line data;
    for (unsigned l = 0; l < kLinesPerPage; ++l) {
        generateLine(cls, Rng::mix(page, l, unsigned(cls)), data);
        McTrace tr;
        mc.writebackLine(Addr(page) * kPageBytes + l * kLineBytes, data,
                         tr);
    }
}

void
report(const char *stage, CompressoController &mc, SimOs &os,
       BalloonDriver &balloon)
{
    std::printf("%-34s | machine used %4llu KB free %4llu KB | "
                "OS resident %4llu pages | balloon %llu\n",
                stage,
                (unsigned long long)mc.mpaDataBytes() / 1024,
                (unsigned long long)(uint64_t(4096) * 1024 -
                                     mc.mpaDataBytes()) /
                    1024,
                (unsigned long long)os.residentPages(),
                (unsigned long long)balloon.heldPages());
}

/** The original demo: fill, degrade, balloon, deflate. */
void
classicDemo()
{
    // 4 MB installed; the OS is promised 8 MB (2048 OSPA pages).
    constexpr uint64_t kInstalled = uint64_t(4) << 20;
    constexpr uint64_t kPromisedPages = 2048;

    CompressoConfig cfg;
    cfg.installed_bytes = kInstalled;
    CompressoController mc(cfg);
    SimOs os(kPromisedPages);
    BalloonDriver balloon(os, mc);

    std::printf("Installed machine memory: 4 MB; promised to the OS: "
                "8 MB (relying on ~2x compression)\n\n");

    // Phase 1: the OS uses 1500 pages of nicely-compressing data
    // (6 MB of OSPA in ~1.5 MB of machine memory).
    for (PageNum p = 0; p < 1500; ++p) {
        os.touch(p, true);
        writePage(mc, p, DataClass::kDeltaInt);
    }
    report("phase 1: 1500 compressible pages", mc, os, balloon);

    // Phase 2: a third of the data is overwritten with incompressible
    // values; machine usage balloons.
    for (PageNum p = 0; p < 500; ++p) {
        os.touch(p, true);
        writePage(mc, p, DataClass::kRandom);
    }
    report("phase 2: 500 pages turn random", mc, os, balloon);

    // Phase 3: the watermark check sees free machine memory below the
    // reserve and asks the balloon driver to make room. The driver
    // inflates; the OS reclaims cold pages; the controller invalidates
    // them and their chunks return to the free list.
    uint64_t free_chunks =
        (kInstalled - mc.mpaDataBytes()) / kChunkBytes;
    uint64_t reclaimed = balloon.balance(free_chunks,
                                         /*reserve_chunks=*/4096);
    std::printf("\nballoon.balance(): reclaimed %llu cold OSPA pages "
                "from the OS\n\n",
                (unsigned long long)reclaimed);
    report("phase 3: after ballooning", mc, os, balloon);

    // Phase 4: pressure relieved (data freed / recompressed), the
    // balloon deflates and the OS gets its pages back.
    balloon.deflate(reclaimed);
    report("phase 4: balloon deflated", mc, os, balloon);

    std::printf("\nThroughout, the OS ran its stock reclaim path — no "
                "compression awareness needed\n(the paper's Tab. I "
                "'OS-transparent' column).\n");
}

void
printReport(const ChaosReport &r)
{
    std::printf("\n%s: %s%s%s — %llu refs, oom %llu (rescued %llu), "
                "throttled %llu, ladder %llu, breaches %llu, "
                "stall p99 max %llu\n",
                r.controller.c_str(), r.passed ? "PASS" : "FAIL",
                r.fail_reason.empty() ? "" : ": ",
                r.fail_reason.c_str(),
                (unsigned long long)r.total_refs,
                (unsigned long long)r.oom_events,
                (unsigned long long)r.oom_rescued,
                (unsigned long long)r.throttled_total,
                (unsigned long long)r.ladder_steps,
                (unsigned long long)r.watchdog_breaches,
                (unsigned long long)r.stall_p99_max);
    for (const ChaosPhaseReport &ph : r.phases)
        std::printf("  %-18s level %-9s stall p99 %5llu | oom %llu "
                    "throttle %llu ladder %llu swap_full %llu "
                    "zero_tol %llu\n",
                    ph.scenario.c_str(), ph.level_end.c_str(),
                    (unsigned long long)ph.stall_p99,
                    (unsigned long long)ph.machine_oom,
                    (unsigned long long)ph.throttled,
                    (unsigned long long)ph.ladder_steps,
                    (unsigned long long)ph.swap_full,
                    (unsigned long long)ph.zero_tolerated);
}

/** Write @p r's bundles as postmortem-<controller>-NNN.json under
 *  @p dir; returns false (after complaining) on I/O failure. */
bool
dumpPostmortems(const std::string &dir, const ChaosReport &r)
{
    int n = writePostmortemBundles(dir, "balloon_oom",
                                   "postmortem-" + r.controller + "-",
                                   r.postmortems);
    if (n < 0) {
        std::fprintf(stderr, "cannot write post-mortem bundles under %s\n",
                     dir.c_str());
        return false;
    }
    if (n > 0)
        std::printf("wrote %d post-mortem bundle%s under %s (%s)\n", n,
                    n == 1 ? "" : "s", dir.c_str(),
                    kPostmortemJsonSchema);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool soak = false;
    uint64_t refs = 0, seed = 1;
    unsigned jobs = 2;
    std::string out, pm_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--soak") == 0)
            soak = true;
        else if (std::strcmp(argv[i], "--refs") == 0 && i + 1 < argc)
            refs = std::strtoull(argv[++i], nullptr, 0);
        else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
            seed = std::strtoull(argv[++i], nullptr, 0);
        else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = unsigned(std::strtoul(argv[++i], nullptr, 0));
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out = argv[++i];
        else if (std::strcmp(argv[i], "--postmortem") == 0 &&
                 i + 1 < argc)
            pm_dir = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: %s [--soak] [--refs N] [--seed N] "
                         "[--jobs N] [--out soak.json] "
                         "[--postmortem <dir>]\n",
                         argv[0]);
            return 2;
        }
    }

    ChaosConfig cc;
    cc.seed = seed;
    cc.refs_per_phase = refs != 0 ? refs : (soak ? 200000 : 30000);
    cc.postmortem = !pm_dir.empty();

    if (!soak) {
        classicDemo();

        // Self-check: the same OOM story under adversarial pressure,
        // with the governor + watchdog live and every fill verified
        // against the expected-content model.
        std::printf("\n--- chaos self-check (compresso, %llu refs x "
                    "%zu phases) ---\n",
                    (unsigned long long)cc.refs_per_phase,
                    ChaosConfig::defaultPhases().size());
        ChaosEngine engine(cc);
        ChaosReport r = engine.run("compresso");
        printReport(r);
        if (!pm_dir.empty() && !dumpPostmortems(pm_dir, r))
            return 2;
        if (!r.passed)
            return 1;
        std::printf("\nall gates held: 0 silent corruptions, 0 audit "
                    "violations, stall p99 within %llu device ops.\n",
                    (unsigned long long)engine.config().stall_p99_bound);
        return 0;
    }

    SoakConfig sc;
    sc.chaos = cc;
    sc.jobs = jobs;
    std::printf("soak: %llu refs/phase, seed %llu, %u jobs, "
                "controllers",
                (unsigned long long)cc.refs_per_phase,
                (unsigned long long)seed, jobs);
    for (const std::string &k : ChaosEngine::allKinds())
        std::printf(" %s", k.c_str());
    std::printf("\n");

    SoakResult res = runSoak(sc);
    for (const ChaosReport &r : res.reports)
        printReport(r);

    if (!pm_dir.empty()) {
        for (const ChaosReport &r : res.reports)
            if (!dumpPostmortems(pm_dir, r))
                return 2;
    }

    if (!out.empty()) {
        if (!writeSoakJson(out, "balloon_oom", res)) {
            std::fprintf(stderr, "cannot write %s\n", out.c_str());
            return 2;
        }
        std::printf("\nwrote %s (%s)\n", out.c_str(), kSoakJsonSchema);
    }
    std::printf("\nsoak %s\n", res.allPassed() ? "PASSED" : "FAILED");
    return res.allPassed() ? 0 : 1;
}
