/**
 * @file
 * Functional equivalence across every optimization configuration: the
 * Sec. IV-B flags change *where* data lives and *what it costs*, never
 * what reads return. Sweeps flag combinations (parameterized) with a
 * randomized workload against a reference map.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "core/compresso_controller.h"
#include "workloads/datagen.h"

using namespace compresso;

namespace {

struct Flags
{
    bool align;
    bool inflation;
    bool predict;
    bool dyn_ir;
    bool repack;
    bool md_half;
    PageSizing sizing;
    const char *label;
};

CompressoConfig
toConfig(const Flags &f)
{
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(64) << 20;
    cfg.mdcache.size_bytes = 4 * 1024;
    cfg.alignment_friendly = f.align;
    cfg.inflation_room = f.inflation;
    cfg.overflow_prediction = f.predict;
    cfg.dynamic_ir_expansion = f.dyn_ir;
    cfg.repack_on_evict = f.repack;
    cfg.mdcache.half_entry_opt = f.md_half;
    cfg.page_sizing = f.sizing;
    return cfg;
}

} // namespace

class CompressoAblations : public ::testing::TestWithParam<Flags>
{
};

TEST_P(CompressoAblations, FunctionalEquivalence)
{
    CompressoController mc(toConfig(GetParam()));
    Rng rng(0xab1a);
    std::unordered_map<Addr, Line> reference;
    Line data;

    for (int iter = 0; iter < 5000; ++iter) {
        Addr a = Addr(rng.below(12)) * kPageBytes +
                 rng.below(kLinesPerPage) * kLineBytes;
        McTrace tr;
        if (rng.chance(0.55)) {
            generateLine(DataClass(rng.below(kNumDataClasses)),
                         rng.next(), data);
            mc.writebackLine(a, data, tr);
            reference[a] = data;
        } else {
            mc.fillLine(a, data, tr);
            Line expect{};
            auto it = reference.find(a);
            if (it != reference.end())
                expect = it->second;
            ASSERT_EQ(data, expect)
                << GetParam().label << " @ " << std::hex << a;
        }
    }

    // Everything intact at the end, and the machine accounting sane.
    for (const auto &[a, expect] : reference) {
        McTrace tr;
        mc.fillLine(a, data, tr);
        ASSERT_EQ(data, expect) << GetParam().label;
    }
    EXPECT_GE(mc.compressionRatio(), 0.9);
}

TEST_P(CompressoAblations, StatsStayConsistent)
{
    CompressoController mc(toConfig(GetParam()));
    Rng rng(0x57a7);
    Line data;
    for (int iter = 0; iter < 3000; ++iter) {
        Addr a = Addr(rng.below(8)) * kPageBytes +
                 rng.below(kLinesPerPage) * kLineBytes;
        McTrace tr;
        if (rng.chance(0.6)) {
            generateLine(DataClass(rng.below(kNumDataClasses)),
                         rng.next(), data);
            mc.writebackLine(a, data, tr);
        } else {
            mc.fillLine(a, data, tr);
        }
    }
    const StatGroup &s = mc.stats();
    // Disabled features must not fire.
    const Flags &f = GetParam();
    if (!f.predict)
        EXPECT_EQ(s.get("predictor_inflations"), 0u) << f.label;
    if (!f.dyn_ir)
        EXPECT_EQ(s.get("dyn_ir_expansions"), 0u) << f.label;
    if (!f.repack)
        EXPECT_EQ(s.get("repacks"), 0u) << f.label;
    if (!f.inflation)
        EXPECT_EQ(s.get("ir_placements"), 0u) << f.label;
    // Fills/writebacks tally with issue counts.
    EXPECT_EQ(s.get("fills") + s.get("writebacks"), 3000u) << f.label;
}

INSTANTIATE_TEST_SUITE_P(
    FlagSweep, CompressoAblations,
    ::testing::Values(
        Flags{false, false, false, false, false, false,
              PageSizing::kChunked512, "all_off"},
        Flags{true, false, false, false, false, false,
              PageSizing::kChunked512, "align_only"},
        Flags{true, true, false, false, false, false,
              PageSizing::kChunked512, "ir"},
        Flags{true, true, true, false, false, false,
              PageSizing::kChunked512, "ir_predict"},
        Flags{true, true, true, true, false, false,
              PageSizing::kChunked512, "ir_predict_dyn"},
        Flags{true, true, true, true, true, false,
              PageSizing::kChunked512, "plus_repack"},
        Flags{true, true, true, true, true, true,
              PageSizing::kChunked512, "full_compresso"},
        Flags{false, true, false, false, true, true,
              PageSizing::kChunked512, "legacy_bins_repack"},
        Flags{true, true, false, false, false, false,
              PageSizing::kVariable4, "variable_pages"},
        Flags{false, false, false, false, true, false,
              PageSizing::kVariable4, "variable_repack"}),
    [](const auto &info) { return std::string(info.param.label); });
