/**
 * @file
 * Tests for the OS-aware LCP baseline controller.
 */

#include <gtest/gtest.h>

#include "core/compresso_controller.h"
#include "core/lcp_controller.h"
#include "workloads/datagen.h"

using namespace compresso;

namespace {

LcpConfig
baseConfig(bool align = false)
{
    LcpConfig cfg;
    cfg.alignment_friendly = align;
    cfg.installed_bytes = uint64_t(64) << 20;
    cfg.mdcache.size_bytes = 16 * 1024;
    return cfg;
}

Line
classLine(DataClass c, uint64_t seed)
{
    Line l;
    generateLine(c, seed, l);
    return l;
}

Addr
addrOf(PageNum page, unsigned line)
{
    return Addr(page) * kPageBytes + Addr(line) * kLineBytes;
}

void
writeLine(LcpController &mc, Addr a, const Line &data)
{
    McTrace tr;
    mc.writebackLine(a, data, tr);
}

Line
readLine(LcpController &mc, Addr a, McTrace *out = nullptr)
{
    Line data;
    McTrace tr;
    mc.fillLine(a, data, tr);
    if (out)
        *out = tr;
    return data;
}

} // namespace

TEST(Lcp, UntouchedReadsZero)
{
    LcpController mc(baseConfig());
    EXPECT_TRUE(isZeroLine(readLine(mc, addrOf(1, 1))));
    EXPECT_EQ(mc.stats().get("zero_fills"), 1u);
}

TEST(Lcp, RoundTripEveryDataClass)
{
    LcpController mc(baseConfig());
    for (size_t c = 0; c < kNumDataClasses; ++c) {
        Line in = classLine(DataClass(c), 5 + c);
        writeLine(mc, addrOf(2, unsigned(c)), in);
        EXPECT_EQ(readLine(mc, addrOf(2, unsigned(c))), in)
            << dataClassName(DataClass(c));
    }
}

TEST(Lcp, ExceptionLinesStoredAndRead)
{
    LcpController mc(baseConfig(true));
    // Establish a small target with a compressible line...
    writeLine(mc, addrOf(3, 0), classLine(DataClass::kDeltaInt, 1));
    // ...then add incompressible lines that cannot fit the target.
    Line big = classLine(DataClass::kRandom, 2);
    writeLine(mc, addrOf(3, 1), big);
    EXPECT_GE(mc.stats().get("line_overflows"), 1u);
    EXPECT_EQ(readLine(mc, addrOf(3, 1)), big);
}

TEST(Lcp, PageOverflowRaisesPageFault)
{
    LcpConfig cfg = baseConfig(true);
    LcpController mc(cfg);
    // Small target page, then flood it with incompressible lines
    // until the exception region overflows.
    writeLine(mc, addrOf(4, 0), classLine(DataClass::kDeltaInt, 1));
    for (unsigned l = 1; l < kLinesPerPage; ++l)
        writeLine(mc, addrOf(4, l), classLine(DataClass::kRandom, l));
    EXPECT_GE(mc.stats().get("page_faults"), 1u);
    EXPECT_GT(mc.stats().get("page_fault_cycles"), 0u);
    // Everything still reads back.
    for (unsigned l = 1; l < kLinesPerPage; ++l)
        ASSERT_EQ(readLine(mc, addrOf(4, l)),
                  classLine(DataClass::kRandom, l));
}

TEST(Lcp, StallCyclesSurfaceInTrace)
{
    LcpConfig cfg = baseConfig(true);
    cfg.page_fault_cycles = 1234;
    LcpController mc(cfg);
    writeLine(mc, addrOf(5, 0), classLine(DataClass::kDeltaInt, 1));
    Cycle total_stall = 0;
    for (unsigned l = 1; l < kLinesPerPage; ++l) {
        McTrace tr;
        mc.writebackLine(addrOf(5, l), classLine(DataClass::kRandom, l),
                         tr);
        total_stall += tr.stall_cycles;
    }
    EXPECT_GE(total_stall, 1234u);
}

TEST(Lcp, SpeculativeParallelFlagOnFills)
{
    LcpController mc(baseConfig());
    writeLine(mc, addrOf(6, 0), classLine(DataClass::kSmallInt, 1));
    McTrace tr;
    readLine(mc, addrOf(6, 0), &tr);
    EXPECT_TRUE(tr.speculative_parallel);
}

TEST(Lcp, ZeroLineShortcut)
{
    LcpController mc(baseConfig());
    writeLine(mc, addrOf(7, 0), classLine(DataClass::kSmallInt, 1));
    writeLine(mc, addrOf(7, 1), Line{}); // zero line on a live page
    McTrace tr;
    Line d = readLine(mc, addrOf(7, 1), &tr);
    EXPECT_TRUE(isZeroLine(d));
    // No data device ops for the zero line.
    for (const auto &op : tr.ops)
        EXPECT_GE(op.addr, Addr(1) << 40);
}

TEST(Lcp, NoRepackingEver)
{
    LcpController mc(baseConfig());
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        writeLine(mc, addrOf(8, l), classLine(DataClass::kRandom, l));
    uint64_t big = mc.mpaDataBytes();
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        writeLine(mc, addrOf(8, l), Line{});
    // LCP never shrinks a page (Fig. 7's motivation).
    EXPECT_EQ(mc.mpaDataBytes(), big);
}

TEST(Lcp, LegacyTargetsSplitMoreThanAligned)
{
    LcpController legacy(baseConfig(false));
    LcpController aligned(baseConfig(true));
    Rng rng(9);
    for (PageNum p = 0; p < 8; ++p)
        for (unsigned l = 0; l < kLinesPerPage; ++l) {
            Line d = classLine(DataClass::kFloat, rng.next());
            writeLine(legacy, addrOf(p, l), d);
            writeLine(aligned, addrOf(p, l), d);
        }
    for (PageNum p = 0; p < 8; ++p)
        for (unsigned l = 0; l < kLinesPerPage; ++l) {
            readLine(legacy, addrOf(p, l));
            readLine(aligned, addrOf(p, l));
        }
    EXPECT_GT(legacy.stats().get("split_fill_lines"),
              aligned.stats().get("split_fill_lines"));
}

TEST(Lcp, ChurnIntegrity)
{
    LcpController mc(baseConfig());
    Rng rng(77);
    std::unordered_map<Addr, Line> image;
    for (int iter = 0; iter < 3000; ++iter) {
        Addr a = addrOf(10 + rng.below(6),
                        unsigned(rng.below(kLinesPerPage)));
        if (rng.chance(0.6)) {
            Line d = classLine(DataClass(rng.below(kNumDataClasses)),
                               rng.next());
            writeLine(mc, a, d);
            image[a] = d;
        } else {
            Line expect{};
            auto it = image.find(a);
            if (it != image.end())
                expect = it->second;
            ASSERT_EQ(readLine(mc, a), expect);
        }
    }
}

TEST(Lcp, FreePageReleasesEverything)
{
    LcpController mc(baseConfig());
    for (unsigned l = 0; l < 8; ++l)
        writeLine(mc, addrOf(20, l), classLine(DataClass::kRandom, l));
    EXPECT_GT(mc.mpaDataBytes(), 0u);
    mc.freePage(20);
    EXPECT_EQ(mc.mpaDataBytes(), 0u);
    EXPECT_TRUE(isZeroLine(readLine(mc, addrOf(20, 0))));
}

TEST(Lcp, CompressionWorseThanCompressoOnVariableData)
{
    // Sec. II-C: LCP-packing underperforms LinePack when line sizes
    // vary within a page. Checked end to end via both controllers on
    // identical data.
    LcpController lcp(baseConfig(false));
    CompressoConfig ccfg;
    ccfg.installed_bytes = uint64_t(64) << 20;
    CompressoController compresso(ccfg);
    Rng rng(31);
    for (PageNum p = 0; p < 16; ++p) {
        for (unsigned l = 0; l < kLinesPerPage; ++l) {
            DataClass c = rng.chance(0.5) ? DataClass::kDeltaInt
                                          : DataClass::kFloat;
            Line d = classLine(c, rng.next());
            writeLine(lcp, addrOf(p, l), d);
            McTrace tr;
            compresso.writebackLine(addrOf(p, l), d, tr);
        }
    }
    EXPECT_GE(lcp.compressionRatio(), 1.0);
    EXPECT_GT(compresso.compressionRatio(),
              lcp.compressionRatio() * 1.1);
}
