/**
 * @file
 * freePage / balloon-release stress: every compressed controller must
 * survive repeated release-and-re-touch cycles — chunks fully
 * reclaimed, freed pages reading zero, re-touched pages holding new
 * data — with a clean invariant audit throughout. Also exercises the
 * full SimOs + BalloonDriver path the capacity evaluation uses.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/compresso_controller.h"
#include "core/dmc_controller.h"
#include "core/lcp_controller.h"
#include "core/rmc_controller.h"
#include "os/balloon.h"
#include "os/sim_os.h"
#include "workloads/datagen.h"

using namespace compresso;

namespace {

constexpr uint64_t kArena = uint64_t(32) << 20;

std::unique_ptr<MemoryController>
makeController(const std::string &kind)
{
    if (kind == "compresso") {
        CompressoConfig cfg;
        cfg.installed_bytes = kArena;
        cfg.mdcache.size_bytes = 4 * 1024; // small: evictions + repacks
        return std::make_unique<CompressoController>(cfg);
    }
    if (kind == "lcp") {
        LcpConfig cfg;
        cfg.installed_bytes = kArena;
        return std::make_unique<LcpController>(cfg);
    }
    if (kind == "rmc") {
        RmcConfig cfg;
        cfg.installed_bytes = kArena;
        return std::make_unique<RmcController>(cfg);
    }
    DmcConfig cfg;
    cfg.installed_bytes = kArena;
    cfg.epoch_writebacks = 256; // force hot/cold migrations mid-cycle
    return std::make_unique<DmcController>(cfg);
}

/** Replay a seeded mixed fill/writeback workload. */
void
storm(MemoryController &mc, unsigned pages, unsigned ops,
      uint64_t seed)
{
    Rng rng(seed);
    Line data;
    for (unsigned i = 0; i < ops; ++i) {
        Addr a = Addr(rng.below(pages)) * kPageBytes +
                 rng.below(kLinesPerPage) * kLineBytes;
        McTrace tr;
        if (rng.chance(0.7)) {
            generateLine(DataClass(rng.below(kNumDataClasses)),
                         rng.next(), data);
            mc.writebackLine(a, data, tr);
        } else {
            mc.fillLine(a, data, tr);
        }
    }
}

Line
classLine(DataClass c, uint64_t seed)
{
    Line l;
    generateLine(c, seed, l);
    return l;
}

} // namespace

class FreePageStress : public ::testing::TestWithParam<const char *>
{
};

TEST_P(FreePageStress, ReleaseRetouchCyclesStayClean)
{
    std::unique_ptr<MemoryController> mc = makeController(GetParam());
    const unsigned kPages = 24;

    for (unsigned cycle = 0; cycle < 3; ++cycle) {
        SCOPED_TRACE("cycle " + std::to_string(cycle));
        storm(*mc, kPages, 1200, Rng::mix(cycle, 42));
        {
            AuditReport rep = mc->audit();
            ASSERT_TRUE(rep.clean()) << rep.summary();
        }

        // Balloon-release every other page, then immediately re-touch
        // the freed range: freed pages must read zero and accept new
        // data without tripping stale state.
        for (PageNum p = 0; p < kPages; p += 2)
            mc->freePage(p);
        {
            AuditReport rep = mc->audit();
            ASSERT_TRUE(rep.clean()) << rep.summary();
        }
        Line fresh = classLine(DataClass::kDeltaInt, cycle);
        for (PageNum p = 0; p < kPages; p += 2) {
            Line got;
            McTrace tr;
            mc->fillLine(p * kPageBytes, got, tr);
            ASSERT_TRUE(isZeroLine(got)) << "page " << p;
            mc->writebackLine(p * kPageBytes, fresh, tr);
            mc->fillLine(p * kPageBytes, got, tr);
            ASSERT_EQ(got, fresh) << "page " << p;
        }
        {
            AuditReport rep = mc->audit();
            ASSERT_TRUE(rep.clean()) << rep.summary();
        }
    }

    // Full teardown: every chunk must come back.
    mc->flush();
    for (PageNum p = 0; p < kPages; ++p)
        mc->freePage(p);
    AuditReport rep = mc->audit();
    EXPECT_TRUE(rep.clean()) << rep.summary();
    EXPECT_EQ(mc->mpaDataBytes(), 0u);
}

TEST_P(FreePageStress, DoubleFreeAndFreeUntouchedAreHarmless)
{
    std::unique_ptr<MemoryController> mc = makeController(GetParam());
    mc->freePage(7); // never touched
    storm(*mc, 8, 300, 99);
    mc->freePage(3);
    mc->freePage(3); // double free: idempotent
    AuditReport rep = mc->audit();
    EXPECT_TRUE(rep.clean()) << rep.summary();
    McTrace tr;
    Line got;
    mc->fillLine(3 * kPageBytes, got, tr);
    EXPECT_TRUE(isZeroLine(got));
}

INSTANTIATE_TEST_SUITE_P(AllControllers, FreePageStress,
                         ::testing::Values("compresso", "lcp", "rmc",
                                           "dmc"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

// ---------------------------------------------------------------------
// The OS-visible path: SimOs reclaim -> BalloonDriver -> freePage.
// ---------------------------------------------------------------------

TEST(BalloonStress, InflateReleasesChunksAndRetouchWorks)
{
    CompressoConfig cfg;
    cfg.installed_bytes = kArena;
    CompressoController mc(cfg);
    SimOs os(/*budget_pages=*/32);
    BalloonDriver balloon(os, mc);

    // Populate: the OS touches pages, the controller stores their data.
    Line data;
    for (PageNum p = 0; p < 32; ++p) {
        os.touch(p, /*dirty=*/true);
        for (unsigned l = 0; l < 4; ++l) {
            generateLine(DataClass::kDeltaInt, Rng::mix(p, l), data);
            McTrace tr;
            mc.writebackLine(p * kPageBytes + l * kLineBytes, data, tr);
        }
    }
    uint64_t used_before = mc.mpaDataBytes();
    ASSERT_GT(used_before, 0u);

    // Inflate: the OS gives up its coldest pages; the controller
    // releases their chunks.
    uint64_t got = balloon.inflate(8);
    EXPECT_EQ(got, 8u);
    EXPECT_EQ(balloon.heldPages(), 8u);
    EXPECT_LT(mc.mpaDataBytes(), used_before);
    EXPECT_EQ(os.residentPages(), 24u);
    {
        AuditReport rep = mc.audit();
        ASSERT_TRUE(rep.clean()) << rep.summary();
    }

    // Deflate and re-touch: pages come back zero-filled and writable.
    balloon.deflate(8);
    EXPECT_EQ(balloon.heldPages(), 0u);
    unsigned retouched = 0;
    for (PageNum p = 0; p < 32; ++p) {
        McTrace tr;
        Line got_line;
        mc.fillLine(p * kPageBytes, got_line, tr);
        if (isZeroLine(got_line)) {
            os.touch(p, true);
            generateLine(DataClass::kFloat, p, data);
            mc.writebackLine(p * kPageBytes, data, tr);
            mc.fillLine(p * kPageBytes, got_line, tr);
            ASSERT_EQ(got_line, data) << "page " << p;
            ++retouched;
        }
    }
    EXPECT_GE(retouched, 8u); // at least the ballooned pages
    AuditReport rep = mc.audit();
    EXPECT_TRUE(rep.clean()) << rep.summary();
}

TEST(BalloonStress, BalancePolicyKeepsReserve)
{
    // Tiny arena: a handful of incompressible pages exhaust it, and
    // balance() must claw chunks back from the OS.
    CompressoConfig cfg;
    cfg.installed_bytes = 64 * kChunkBytes;
    CompressoController mc(cfg);
    SimOs os(/*budget_pages=*/16);
    BalloonDriver balloon(os, mc);

    Line data;
    for (PageNum p = 0; p < 6; ++p) {
        os.touch(p, true);
        for (unsigned l = 0; l < kLinesPerPage; ++l) {
            generateLine(DataClass::kRandom, Rng::mix(p, l, 1), data);
            McTrace tr;
            mc.writebackLine(p * kPageBytes + l * kLineBytes, data, tr);
        }
    }

    uint64_t total = 64;
    uint64_t used = mc.mpaDataBytes() / kChunkBytes;
    uint64_t free_chunks = total - used;
    uint64_t reclaimed = balloon.balance(free_chunks, free_chunks + 8);
    EXPECT_GT(reclaimed, 0u);
    EXPECT_GT(total - mc.mpaDataBytes() / kChunkBytes, free_chunks);
    AuditReport rep = mc.audit();
    EXPECT_TRUE(rep.clean()) << rep.summary();
}
