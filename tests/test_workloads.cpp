/**
 * @file
 * Tests for data generation, benchmark profiles and access streams.
 */

#include <gtest/gtest.h>

#include <set>

#include "compress/bpc.h"
#include "workloads/access_stream.h"
#include "workloads/mixes.h"
#include "workloads/profiles.h"

using namespace compresso;

TEST(DataGen, Deterministic)
{
    Line a, b;
    generateLine(DataClass::kPointer, 42, a);
    generateLine(DataClass::kPointer, 42, b);
    EXPECT_EQ(a, b);
    generateLine(DataClass::kPointer, 43, b);
    EXPECT_NE(a, b);
}

TEST(DataGen, ZeroClassIsZero)
{
    Line l;
    generateLine(DataClass::kZero, 7, l);
    EXPECT_TRUE(isZeroLine(l));
}

TEST(DataGen, ClassCompressibilityOrdering)
{
    // The classes must span the compressibility spectrum for the
    // Fig. 2 reproduction to work.
    BpcCompressor bpc;
    auto avgBytes = [&](DataClass c) {
        size_t total = 0;
        Line l;
        for (uint64_t s = 0; s < 32; ++s) {
            generateLine(c, s, l);
            total += bpc.compressedBytes(l);
        }
        return double(total) / 32;
    };
    double delta = avgBytes(DataClass::kDeltaInt);
    double flt = avgBytes(DataClass::kFloat);
    double rnd = avgBytes(DataClass::kRandom);
    EXPECT_LT(delta, flt);
    EXPECT_LT(flt, rnd);
    EXPECT_LE(delta, 8.0);   // bin 8
    EXPECT_GE(rnd, 60.0);    // incompressible
}

TEST(DataGen, SampleClassRespectsWeights)
{
    ClassMix m{};
    m[size_t(DataClass::kFloat)] = 1.0;
    EXPECT_EQ(sampleClass(m, 0.0), DataClass::kFloat);
    EXPECT_EQ(sampleClass(m, 0.999), DataClass::kFloat);
}

TEST(Profiles, ThirtyBenchmarks)
{
    EXPECT_EQ(allProfiles().size(), 30u);
    std::set<std::string> names;
    for (const auto &p : allProfiles()) {
        EXPECT_TRUE(names.insert(p.name).second) << "dup " << p.name;
        EXPECT_GT(p.pages, 0u);
        EXPECT_GT(p.inst_per_mem, 0.0);
    }
}

TEST(Profiles, PaperBenchmarksPresent)
{
    for (const char *n :
         {"mcf", "libquantum", "zeusmp", "leslie3d", "soplex", "omnetpp",
          "Forestfire", "Pagerank", "Graph500", "GemsFDTD", "lbm"}) {
        EXPECT_EQ(profileByName(n).name, n);
    }
}

TEST(Profiles, StallersMarked)
{
    EXPECT_TRUE(profileByName("mcf").stalls_when_constrained);
    EXPECT_TRUE(profileByName("GemsFDTD").stalls_when_constrained);
    EXPECT_TRUE(profileByName("lbm").stalls_when_constrained);
    EXPECT_FALSE(profileByName("gcc").stalls_when_constrained);
}

TEST(Profiles, PageClassDeterministic)
{
    const WorkloadProfile &p = profileByName("gcc");
    EXPECT_EQ(pageClass(p, 5, 0), pageClass(p, 5, 0));
}

TEST(Profiles, PhaseMixShiftsCompressibility)
{
    const WorkloadProfile &p = profileByName("GemsFDTD");
    ClassMix even = phaseMix(p, 0);
    ClassMix odd = phaseMix(p, 1);
    EXPECT_NE(even[size_t(DataClass::kZero)],
              odd[size_t(DataClass::kZero)]);
}

TEST(Mixes, TabFourVerbatim)
{
    const auto &mixes = allMixes();
    ASSERT_EQ(mixes.size(), 10u);
    EXPECT_EQ(mixes[0].benchmarks[0], "mcf");
    EXPECT_EQ(mixes[9].benchmarks[0], "Forestfire");
    for (const auto &m : mixes)
        for (const auto &b : m.benchmarks)
            EXPECT_NO_FATAL_FAILURE(profileByName(b));
}

TEST(AccessStream, AddressesStayInRange)
{
    const WorkloadProfile &p = profileByName("gcc");
    AccessStream s(p, 1, 100);
    for (int i = 0; i < 20000; ++i) {
        MemRef r = s.next();
        ASSERT_GE(r.addr, s.baseAddr());
        ASSERT_LT(r.addr, s.endAddr());
    }
}

TEST(AccessStream, Deterministic)
{
    const WorkloadProfile &p = profileByName("mcf");
    AccessStream a(p, 9), b(p, 9);
    for (int i = 0; i < 5000; ++i) {
        MemRef ra = a.next();
        MemRef rb = b.next();
        ASSERT_EQ(ra.addr, rb.addr);
        ASSERT_EQ(ra.write, rb.write);
    }
}

TEST(AccessStream, WriteFractionApproximatelyHonored)
{
    const WorkloadProfile &p = profileByName("lbm"); // write_frac 0.45
    AccessStream s(p, 3);
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        writes += s.next().write;
    EXPECT_NEAR(double(writes) / n, p.write_frac, 0.02);
}

TEST(AccessStream, HotSetConcentratesAccesses)
{
    const WorkloadProfile &p = profileByName("povray"); // hot_prob 0.95
    AccessStream s(p, 4);
    uint64_t hot_pages = uint64_t(p.pages * p.hot_frac);
    int hot = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        MemRef r = s.next();
        hot += (pageOf(r.addr) < hot_pages);
    }
    EXPECT_GT(double(hot) / n, 0.6);
}

TEST(AccessStream, WritesMutateDataModel)
{
    const WorkloadProfile &p = profileByName("bzip2");
    AccessStream s(p, 5);
    // Find a write.
    MemRef r;
    do {
        r = s.next();
    } while (!r.write);
    Line now, initial;
    s.lineData(r.addr, now);
    s.initialLineData(r.addr, initial);
    // Version bumped => content changed (unless both zero-class).
    // Weak check: data is deterministic per (state), at least it does
    // not crash and matches on re-read.
    Line again;
    s.lineData(r.addr, again);
    EXPECT_EQ(now, again);
}

TEST(AccessStream, ChurnChangesCompressibilityOverTime)
{
    const WorkloadProfile &p = profileByName("astar"); // churn 0.10
    AccessStream s(p, 6);
    int changed = 0;
    for (int i = 0; i < 50000; ++i) {
        MemRef r = s.next();
        if (!r.write)
            continue;
        Line cur, init;
        s.lineData(r.addr, cur);
        s.initialLineData(r.addr, init);
        changed += cur != init;
    }
    EXPECT_GT(changed, 100);
}

TEST(AccessStream, PhaseAdvances)
{
    const WorkloadProfile &p = profileByName("GemsFDTD"); // 6 phases
    AccessStream s(p, 7, 0, 1000);
    EXPECT_EQ(s.currentPhase(), 0u);
    for (int i = 0; i < 1001; ++i)
        s.next();
    EXPECT_EQ(s.currentPhase(), 1u);
}
