/**
 * @file
 * Tests for the RMC baseline controller (subpage packing with
 * hysteresis, OS-aware overflow).
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "core/rmc_controller.h"
#include "workloads/datagen.h"

using namespace compresso;

namespace {

RmcConfig
baseConfig()
{
    RmcConfig cfg;
    cfg.installed_bytes = uint64_t(64) << 20;
    cfg.bst.size_bytes = 16 * 1024;
    return cfg;
}

Line
classLine(DataClass c, uint64_t seed)
{
    Line l;
    generateLine(c, seed, l);
    return l;
}

Addr
addrOf(PageNum page, unsigned line)
{
    return Addr(page) * kPageBytes + Addr(line) * kLineBytes;
}

void
writeLine(RmcController &mc, Addr a, const Line &d)
{
    McTrace tr;
    mc.writebackLine(a, d, tr);
}

Line
readLine(RmcController &mc, Addr a)
{
    Line d;
    McTrace tr;
    mc.fillLine(a, d, tr);
    return d;
}

} // namespace

TEST(Rmc, UntouchedReadsZero)
{
    RmcController mc(baseConfig());
    EXPECT_TRUE(isZeroLine(readLine(mc, addrOf(0, 0))));
}

TEST(Rmc, RoundTripEveryDataClass)
{
    RmcController mc(baseConfig());
    for (size_t c = 0; c < kNumDataClasses; ++c) {
        Line in = classLine(DataClass(c), 3 + c);
        writeLine(mc, addrOf(1, unsigned(c)), in);
        EXPECT_EQ(readLine(mc, addrOf(1, unsigned(c))), in)
            << dataClassName(DataClass(c));
    }
}

TEST(Rmc, HysteresisAbsorbsSmallGrowth)
{
    RmcController mc(baseConfig());
    // Fill one subpage with compressible lines.
    for (unsigned l = 0; l < RmcController::kLinesPerSubpage; ++l)
        writeLine(mc, addrOf(2, l), classLine(DataClass::kDeltaInt, l));
    uint64_t shifts = mc.stats().get("subpage_shifts");
    // One line grows a bin: the 64 B hysteresis should absorb it.
    Line mid = classLine(DataClass::kFloat, 9);
    writeLine(mc, addrOf(2, 1), mid);
    EXPECT_GE(mc.stats().get("hysteresis_absorbs"), 1u);
    EXPECT_EQ(mc.stats().get("subpage_shifts"), shifts);
    EXPECT_EQ(readLine(mc, addrOf(2, 1)), mid);
}

TEST(Rmc, SubpageOverflowShiftsNeighbors)
{
    RmcConfig cfg = baseConfig();
    cfg.hysteresis_bytes = 0; // no slack: every growth shifts
    RmcController mc(cfg);
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        writeLine(mc, addrOf(3, l), classLine(DataClass::kDeltaInt, l));
    Line big = classLine(DataClass::kRandom, 77);
    writeLine(mc, addrOf(3, 5), big);
    EXPECT_GE(mc.stats().get("subpage_shifts") +
                  mc.stats().get("page_faults"),
              1u);
    EXPECT_EQ(readLine(mc, addrOf(3, 5)), big);
    // Neighbors intact.
    EXPECT_EQ(readLine(mc, addrOf(3, 6)),
              classLine(DataClass::kDeltaInt, 6));
}

TEST(Rmc, PageOverflowIsAnOsFault)
{
    RmcController mc(baseConfig());
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        writeLine(mc, addrOf(4, l), classLine(DataClass::kDeltaInt, l));
    // Flood with incompressible data until the allocation grows.
    Rng rng(5);
    Cycle stalls = 0;
    for (unsigned l = 0; l < kLinesPerPage; ++l) {
        McTrace tr;
        mc.writebackLine(addrOf(4, l),
                         classLine(DataClass::kRandom, rng.next()), tr);
        stalls += tr.stall_cycles;
    }
    EXPECT_GE(mc.stats().get("page_faults"), 1u);
    EXPECT_GT(stalls, 0u);
}

TEST(Rmc, ChurnIntegrity)
{
    RmcController mc(baseConfig());
    Rng rng(31);
    std::unordered_map<Addr, Line> image;
    for (int iter = 0; iter < 3000; ++iter) {
        Addr a = addrOf(10 + rng.below(5),
                        unsigned(rng.below(kLinesPerPage)));
        if (rng.chance(0.6)) {
            Line d = classLine(DataClass(rng.below(kNumDataClasses)),
                               rng.next());
            writeLine(mc, a, d);
            image[a] = d;
        } else {
            Line expect{};
            auto it = image.find(a);
            if (it != image.end())
                expect = it->second;
            ASSERT_EQ(readLine(mc, a), expect);
        }
    }
}

TEST(Rmc, NoRepackingEver)
{
    RmcController mc(baseConfig());
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        writeLine(mc, addrOf(20, l), classLine(DataClass::kRandom, l));
    uint64_t big = mc.mpaDataBytes();
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        writeLine(mc, addrOf(20, l), Line{});
    EXPECT_EQ(mc.mpaDataBytes(), big);
}

TEST(Rmc, FreePageReleasesChunks)
{
    RmcController mc(baseConfig());
    for (unsigned l = 0; l < 8; ++l)
        writeLine(mc, addrOf(30, l), classLine(DataClass::kRandom, l));
    EXPECT_GT(mc.mpaDataBytes(), 0u);
    mc.freePage(30);
    EXPECT_EQ(mc.mpaDataBytes(), 0u);
}

TEST(Rmc, CompressionBetweenUncompressedAndCompresso)
{
    // Tab. V positioning: LinePack-style packing but with per-subpage
    // hysteresis overhead and no repacking.
    RmcController mc(baseConfig());
    for (PageNum p = 0; p < 8; ++p)
        for (unsigned l = 0; l < kLinesPerPage; ++l)
            writeLine(mc, addrOf(p, l),
                      classLine(DataClass::kDeltaInt, p * 64 + l));
    EXPECT_GT(mc.compressionRatio(), 1.5);
    EXPECT_LT(mc.compressionRatio(), 8.0);
}
