/**
 * @file
 * ChaosEngine / runSoak tests: every compressed controller survives
 * the adversarial rotation with zero silent corruptions and a clean
 * audit, the collapse storm really escalates the pressure ladder, and
 * the soak document is bit-identical across worker counts and runs
 * (DESIGN.md §14).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "pressure/chaos.h"
#include "pressure/soak_export.h"
#include "sim/postmortem_export.h"

using namespace compresso;

TEST(ChaosScenarioNames, RoundTrip)
{
    for (size_t i = 0; i < size_t(ChaosScenario::kCount); ++i) {
        ChaosScenario s = ChaosScenario(i);
        EXPECT_EQ(chaosScenarioFromName(chaosScenarioName(s)), s);
    }
    EXPECT_EQ(chaosScenarioFromName("bogus"), ChaosScenario::kCount);
}

TEST(ChaosEngine, ConfigNormalizationFillsDerivedFields)
{
    ChaosConfig cc;
    cc.installed_bytes = uint64_t(8) << 20; // 2048 pages installed
    ChaosEngine engine(cc);
    const ChaosConfig &n = engine.config();
    EXPECT_EQ(n.promised_pages, 4096u); // the ~2x promise
    EXPECT_EQ(n.working_pages, 3072u);  // 3/4 of the promise
    EXPECT_EQ(n.swap_capacity_pages, 512u);
    EXPECT_EQ(n.governor.total_chunks,
              (uint64_t(8) << 20) / kChunkBytes);
    EXPECT_EQ(n.phases.size(), ChaosConfig::defaultPhases().size());
}

class ChaosAllControllers : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ChaosAllControllers, ShortRotationIsCleanAndVerified)
{
    ChaosConfig cc;
    cc.seed = 77;
    cc.refs_per_phase = 6000;
    ChaosEngine engine(cc);
    ChaosReport r = engine.run(GetParam());

    EXPECT_TRUE(r.passed) << r.fail_reason;
    EXPECT_EQ(r.silent_corruptions, 0u);
    EXPECT_EQ(r.audit_violations, 0u);
    EXPECT_LE(r.stall_p99_max, cc.stall_p99_bound);
    EXPECT_EQ(r.total_refs,
              cc.refs_per_phase * ChaosConfig::defaultPhases().size());
    ASSERT_EQ(r.phases.size(), ChaosConfig::defaultPhases().size());
    // Every phase carries its telemetry.
    for (const ChaosPhaseReport &ph : r.phases) {
        EXPECT_EQ(ph.reads + ph.writes, ph.refs);
        EXPECT_FALSE(ph.level_end.empty());
    }
    // The swap storm must actually exhaust the bounded swap device.
    EXPECT_GT(r.phases[3].swap_full + r.phases[3].budget_overruns, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ChaosAllControllers,
                         ::testing::Values("compresso", "lcp", "rmc",
                                           "dmc"));

TEST(ChaosEngine, CollapseStormEscalatesPressure)
{
    // A small machine so the entropy ramp really bites: the governor
    // must leave kNormal during the collapse storm, and every
    // verification gate still holds.
    ChaosConfig cc;
    cc.seed = 3;
    cc.installed_bytes = uint64_t(1) << 19;
    cc.refs_per_phase = 50000;
    cc.phases = {ChaosScenario::kCalm, ChaosScenario::kCollapseStorm};
    ChaosEngine engine(cc);
    ChaosReport r = engine.run("compresso");

    EXPECT_TRUE(r.passed) << r.fail_reason;
    const ChaosPhaseReport &storm = r.phases[1];
    EXPECT_GE(storm.max_level, uint32_t(PressureLevel::kElevated));
    // Pressure shed work and/or rescued OOMs, visibly.
    EXPECT_GT(r.throttled_total + r.oom_events, 0u);
    // Watchdog denials and breaches stay mapped to recorded
    // escalations, not silent stalls.
    EXPECT_GE(r.watchdog_denials + r.throttled_total,
              r.watchdog_breaches);
}

TEST(ChaosEngine, IdenticalSeedsIdenticalReports)
{
    ChaosConfig cc;
    cc.seed = 11;
    cc.refs_per_phase = 3000;
    ChaosReport a = ChaosEngine(cc).run("dmc");
    ChaosReport b = ChaosEngine(cc).run("dmc");

    std::ostringstream ja, jb;
    SoakResult ra, rb;
    ra.seed = rb.seed = cc.seed;
    ra.reports.push_back(a);
    rb.reports.push_back(b);
    writeSoakJson(ja, "test", ra);
    writeSoakJson(jb, "test", rb);
    EXPECT_EQ(ja.str(), jb.str());
}

TEST(RunSoak, BitIdenticalAcrossWorkerCounts)
{
    // The acceptance gate: --jobs 1 and --jobs N produce byte-equal
    // compresso-soak-v1 documents for the same seed.
    SoakConfig sc;
    sc.chaos.seed = 5;
    sc.chaos.refs_per_phase = 2000;

    sc.jobs = 1;
    SoakResult serial = runSoak(sc);
    sc.jobs = 4;
    SoakResult parallel = runSoak(sc);

    ASSERT_EQ(serial.reports.size(), ChaosEngine::allKinds().size());
    std::ostringstream js, jp;
    writeSoakJson(js, "test", serial);
    writeSoakJson(jp, "test", parallel);
    EXPECT_EQ(js.str(), jp.str());
    EXPECT_TRUE(serial.allPassed());
}

TEST(RunSoak, KindSubsetAndReportOrder)
{
    SoakConfig sc;
    sc.chaos.refs_per_phase = 1500;
    sc.chaos.phases = {ChaosScenario::kCalm};
    sc.kinds = {"rmc", "lcp"};
    SoakResult res = runSoak(sc);
    ASSERT_EQ(res.reports.size(), 2u);
    EXPECT_EQ(res.reports[0].controller, "rmc");
    EXPECT_EQ(res.reports[1].controller, "lcp");
    EXPECT_TRUE(res.allPassed());
}

TEST(SoakExport, SchemaAndShape)
{
    SoakConfig sc;
    sc.chaos.refs_per_phase = 1000;
    sc.chaos.phases = {ChaosScenario::kCalm,
                       ChaosScenario::kFaultBurst};
    sc.kinds = {"compresso"};
    SoakResult res = runSoak(sc);

    std::ostringstream os;
    writeSoakJson(os, "unit", res);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"schema\":\"compresso-soak-v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"controller\":\"compresso\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"scenario\":\"fault_burst\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"all_passed\":true"), std::string::npos);
    // No host-timing fields may leak into the deterministic document.
    EXPECT_EQ(doc.find("host_ns"), std::string::npos);
    EXPECT_EQ(doc.find("wall_ns"), std::string::npos);
}

TEST(RunSoak, PostmortemBundlesRideReportsDeterministically)
{
    // Bundles harvested per job must merge in kind order and stay
    // byte-identical at any worker count (the --postmortem acceptance
    // gate, mirrored in examples/balloon_oom.cpp).
    SoakConfig sc;
    sc.chaos.seed = 3;
    sc.chaos.refs_per_phase = 2000;
    sc.chaos.phases = {ChaosScenario::kCalm,
                       ChaosScenario::kCollapseStorm};
    sc.chaos.postmortem = true;
    sc.kinds = {"compresso", "rmc"};

    sc.jobs = 1;
    SoakResult serial = runSoak(sc);
    sc.jobs = 4;
    SoakResult parallel = runSoak(sc);

    ASSERT_EQ(serial.reports.size(), 2u);
#ifndef COMPRESSO_OBS_DISABLED
    // The forced collapse-storm bundle is always captured.
    for (const ChaosReport &r : serial.reports)
        EXPECT_GE(r.postmortems.size(), 1u);
#endif
    auto dump = [](const SoakResult &res) {
        std::ostringstream os;
        for (const ChaosReport &r : res.reports)
            for (const PostmortemBundle &b : r.postmortems)
                writePostmortemJson(os, "test_chaos_soak", b);
        return os.str();
    };
    EXPECT_EQ(dump(serial), dump(parallel));
}

TEST(SoakExport, CountsPostmortemBundles)
{
    SoakConfig sc;
    sc.chaos.refs_per_phase = 1000;
    sc.chaos.phases = {ChaosScenario::kCollapseStorm};
    sc.chaos.postmortem = true;
    sc.kinds = {"compresso"};
    SoakResult res = runSoak(sc);
    ASSERT_EQ(res.reports.size(), 1u);

    std::ostringstream os;
    writeSoakJson(os, "unit", res);
    const std::string doc = os.str();
    // The envelope carries only the count; the bundles themselves are
    // separate compresso-postmortem-v1 documents.
    std::string expect =
        "\"postmortems\":" +
        std::to_string(res.reports[0].postmortems.size());
    EXPECT_NE(doc.find(expect), std::string::npos);
}
