/**
 * @file
 * Tests for the event-count energy model (Sec. VII-C).
 */

#include <gtest/gtest.h>

#include "energy/energy_model.h"

using namespace compresso;

namespace {

StatGroup
dramStats(uint64_t reads, uint64_t writes, uint64_t activates)
{
    StatGroup g("dram");
    g["reads"] = reads;
    g["writes"] = writes;
    g["activates"] = activates;
    return g;
}

} // namespace

TEST(Energy, ZeroActivityOnlyBackground)
{
    EnergyBreakdown e =
        computeEnergy(dramStats(0, 0, 0), 3.0e9, 1, 0, 0);
    // One second of wall clock: background DRAM + core power only.
    EXPECT_NEAR(e.dram_nj, 0.6e9, 1e6);
    EXPECT_NEAR(e.core_nj, 12.0e9, 1e7);
    EXPECT_DOUBLE_EQ(e.mc_nj, 0.0);
}

TEST(Energy, DramScalesWithAccesses)
{
    EnergyBreakdown a =
        computeEnergy(dramStats(1000, 0, 0), 1e6, 1, 0, 0);
    EnergyBreakdown b =
        computeEnergy(dramStats(2000, 0, 0), 1e6, 1, 0, 0);
    EXPECT_GT(b.dram_nj, a.dram_nj);
    EXPECT_NEAR(b.dram_nj - a.dram_nj, 1000 * 15.0, 1.0);
}

TEST(Energy, ActivatesCharged)
{
    EnergyBreakdown a =
        computeEnergy(dramStats(0, 0, 100), 1e6, 1, 0, 0);
    EnergyBreakdown b = computeEnergy(dramStats(0, 0, 0), 1e6, 1, 0, 0);
    EXPECT_NEAR(a.dram_nj - b.dram_nj, 100 * 18.0, 0.5);
}

TEST(Energy, CompressorIsTinyVsDram)
{
    // Paper: BPC power is < 0.4% of a DRAM channel's active power.
    // 1M compressions vs 1M DRAM accesses:
    EnergyBreakdown e =
        computeEnergy(dramStats(1000000, 0, 0), 1e9, 1, 1000000, 0);
    double bpc_nj = e.mc_nj;
    double dram_access_nj = 1000000 * 15.0;
    EXPECT_LT(bpc_nj / dram_access_nj, 0.01);
}

TEST(Energy, MetadataCacheAccessMatchesPaper)
{
    EnergyBreakdown e =
        computeEnergy(dramStats(0, 0, 0), 0, 1, 0, 1000);
    EXPECT_NEAR(e.mc_nj, 1000 * 0.08, 1e-6);
    // 0.08 nJ is < 0.8% of a DRAM read access energy (15 nJ).
    EXPECT_LT(0.08 / 15.0, 0.008);
}

TEST(Energy, CoreScalesWithCoresAndCycles)
{
    EnergyBreakdown one = computeEnergy(dramStats(0, 0, 0), 3e9, 1, 0, 0);
    EnergyBreakdown four =
        computeEnergy(dramStats(0, 0, 0), 3e9, 4, 0, 0);
    EXPECT_NEAR(four.core_nj / one.core_nj, 4.0, 0.01);
}

TEST(Energy, TotalSums)
{
    EnergyBreakdown e =
        computeEnergy(dramStats(10, 10, 1), 1e6, 2, 100, 100);
    EXPECT_DOUBLE_EQ(e.total(), e.dram_nj + e.core_nj + e.mc_nj);
}
