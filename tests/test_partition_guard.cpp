/**
 * @file
 * Cross-partition safety tests (DESIGN.md §17): the tenant registry's
 * carve + ownership map, the PartitionPolicy refusal path, the SimOs
 * reclaim window (counted rejects and the fatal death-test stance),
 * the balloon driver's policy check, and the partition audit.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/compresso_controller.h"
#include "os/balloon.h"
#include "service/tenant.h"
#include "workloads/datagen.h"

using namespace compresso;

namespace {

std::vector<TenantSpec>
twoTenants(uint64_t pages0 = 32, uint64_t pages1 = 48)
{
    TenantSpec a, b;
    a.name = "a";
    a.pages = pages0;
    b.name = "b";
    b.pages = pages1;
    return {a, b};
}

/** Write one page through the controller and make it OS-resident. */
void
writePage(MemoryController &mc, SimOs &os, PageNum p, DataClass cls,
          uint64_t seed)
{
    os.touch(p, true);
    Line data;
    for (unsigned l = 0; l < kLinesPerPage; ++l) {
        generateLine(cls, Rng::mix(p, l, seed), data);
        McTrace tr;
        mc.writebackLine(Addr(p) * kPageBytes + l * kLineBytes, data,
                         tr);
    }
}

} // namespace

TEST(TenantRegistry, CarvesBackToBackFromPageZero)
{
    TenantRegistry reg(twoTenants(32, 48));
    ASSERT_EQ(reg.count(), 2u);
    EXPECT_EQ(reg.partition(0).base_page, 0u);
    EXPECT_EQ(reg.partition(0).pages, 32u);
    EXPECT_EQ(reg.partition(1).base_page, 32u);
    EXPECT_EQ(reg.partition(1).pages, 48u);
    EXPECT_EQ(reg.totalPages(), 80u);

    std::vector<PartitionRange> ranges = reg.ranges();
    ASSERT_EQ(ranges.size(), 2u);
    EXPECT_EQ(ranges[1].base, 32u);
    EXPECT_EQ(ranges[1].pages, 48u);
}

TEST(TenantRegistry, OwnerOfIsARangeLookup)
{
    TenantRegistry reg(twoTenants(32, 48));
    EXPECT_EQ(reg.ownerOf(0), 0u);
    EXPECT_EQ(reg.ownerOf(31), 0u);
    EXPECT_EQ(reg.ownerOf(32), 1u);
    EXPECT_EQ(reg.ownerOf(79), 1u);
    EXPECT_EQ(reg.ownerOf(80), kNoTenant);
    EXPECT_TRUE(reg.contains(0, 5));
    EXPECT_FALSE(reg.contains(0, 32));
    EXPECT_FALSE(reg.contains(7, 5)); // no such tenant
}

TEST(TenantRegistry, MayFreePageOnlyRefusesUnderScope)
{
    TenantRegistry reg(twoTenants());
    SimOs os(reg.totalPages());

    // Global paths (no scope): everything is allowed.
    EXPECT_TRUE(reg.mayFreePage(0));
    EXPECT_TRUE(reg.mayFreePage(40));
    EXPECT_EQ(reg.crossPartitionAttempts(), 0u);
    EXPECT_EQ(reg.scopedTenant(), kNoTenant);

    {
        PartitionScope scope(reg, os, 0);
        EXPECT_EQ(reg.scopedTenant(), 0u);
        EXPECT_TRUE(os.reclaimWindowActive());
        EXPECT_TRUE(reg.mayFreePage(5));   // tenant 0's page
        EXPECT_FALSE(reg.mayFreePage(40)); // tenant 1's page
        EXPECT_FALSE(reg.mayFreePage(999));
        EXPECT_EQ(reg.crossPartitionAttempts(), 2u);
    }
    // Scope torn down: back to global behaviour, count sticks.
    EXPECT_EQ(reg.scopedTenant(), kNoTenant);
    EXPECT_FALSE(os.reclaimWindowActive());
    EXPECT_TRUE(reg.mayFreePage(40));
    EXPECT_EQ(reg.crossPartitionAttempts(), 2u);
}

TEST(ReclaimWindow, RejectsAndCountsOutOfWindowTargets)
{
    SimOs os(64);
    for (PageNum p = 0; p < 8; ++p)
        os.touch(p);
    ASSERT_TRUE(os.isResident(6));

    os.setReclaimWindow(0, 4);
    EXPECT_TRUE(os.inReclaimWindow(3));
    EXPECT_FALSE(os.inReclaimWindow(4));

    // Out-of-window target: refused, counted, page survives.
    EXPECT_FALSE(os.reclaimSpecific(6));
    EXPECT_TRUE(os.isResident(6));
    EXPECT_EQ(os.windowRejects(), 1u);

    // In-window target: the normal reclaim path.
    EXPECT_TRUE(os.reclaimSpecific(2));
    EXPECT_FALSE(os.isResident(2));

    os.clearReclaimWindow();
    EXPECT_TRUE(os.reclaimSpecific(6));
    EXPECT_EQ(os.windowRejects(), 1u);
}

TEST(ReclaimWindow, LruReclaimStaysInsideTheWindow)
{
    SimOs os(64);
    for (PageNum p = 0; p < 16; ++p)
        os.touch(p);

    os.setReclaimWindow(8, 4); // [8, 12)
    std::vector<PageNum> freed = os.reclaim(16);
    EXPECT_LE(freed.size(), 4u);
    for (PageNum p : freed)
        EXPECT_TRUE(p >= 8 && p < 12) << "freed page " << p;
    for (PageNum p : os.coldPages(16))
        EXPECT_TRUE(p >= 8 && p < 12) << "candidate page " << p;
    os.clearReclaimWindow();
}

TEST(ReclaimWindowDeathTest, FatalWindowAbortsOnCrossPartitionFree)
{
    SimOs os(64);
    for (PageNum p = 0; p < 8; ++p)
        os.touch(p);
    os.setReclaimWindow(0, 4, /*fatal=*/true);
    EXPECT_DEATH(os.reclaimSpecific(6), "outside");
}

TEST(BalloonPartition, PolicySkipsAndCountsForeignPages)
{
    TenantRegistry reg(twoTenants(32, 32));
    CompressoConfig cc;
    cc.installed_bytes = 2 * 1024 * 1024;
    CompressoController mc(cc);
    SimOs os(reg.totalPages());
    BalloonDriver balloon(os, mc);
    balloon.setPartitionPolicy(&reg);

    for (PageNum p = 0; p < 40; ++p)
        writePage(mc, os, p, DataClass::kSmallInt, 11);

    PartitionScope scope(reg, os, 0);
    // Demand two of tenant 0's pages and two of tenant 1's: the
    // foreign pages must be skipped and counted, never freed.
    uint64_t freed = balloon.inflateTargeted({2, 3, 34, 35});
    EXPECT_EQ(freed, 2u);
    EXPECT_FALSE(os.isResident(2));
    EXPECT_FALSE(os.isResident(3));
    EXPECT_TRUE(os.isResident(34));
    EXPECT_TRUE(os.isResident(35));
    EXPECT_EQ(balloon.partitionRejects(), 2u);
    EXPECT_GE(reg.crossPartitionAttempts(), 2u);

    std::vector<PageNum> drained = balloon.drainFreed();
    EXPECT_EQ(drained.size(), 2u);
    for (PageNum p : drained)
        EXPECT_EQ(reg.ownerOf(p), 0u);
    balloon.setPartitionPolicy(nullptr);
}

TEST(PartitionAudit, FlagsForeignAndOverlappingPages)
{
    TenantRegistry reg(twoTenants(32, 48));

    // Clean: every backed page owned by exactly one partition.
    AuditReport clean =
        InvariantAuditor::auditPartitions(reg.ranges(), {0, 31, 32, 79});
    EXPECT_EQ(clean.size(), 0u);

    // A backed page past the carve belongs to nobody.
    AuditReport orphan =
        InvariantAuditor::auditPartitions(reg.ranges(), {5, 80});
    EXPECT_EQ(orphan.size(), 1u);

    // Overlapping partition table: flagged regardless of pages.
    std::vector<PartitionRange> overlap = {{0, 40}, {32, 48}};
    AuditReport bad = InvariantAuditor::auditPartitions(overlap, {});
    EXPECT_GE(bad.size(), 1u);
}
