/**
 * @file
 * PressureGovernor tests: watermark levels with hysteresis, admission
 * policy per op class, watchdog-driven denial, OS overrun escalation,
 * and the emergency OOM-rescue ballooning flow (DESIGN.md §14).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/compresso_controller.h"
#include "os/balloon.h"
#include "pressure/governor.h"
#include "workloads/datagen.h"

using namespace compresso;

namespace {

constexpr uint64_t kInstalled = uint64_t(1) << 20; // 2048 chunks

void
writePage(MemoryController &mc, SimOs &os, PageNum p, DataClass cls,
          uint64_t seed)
{
    os.touch(p, true);
    Line data;
    for (unsigned l = 0; l < kLinesPerPage; ++l) {
        generateLine(cls, Rng::mix(p, l, seed), data);
        McTrace tr;
        mc.writebackLine(Addr(p) * kPageBytes + l * kLineBytes, data,
                         tr);
    }
}

struct Rig
{
    CompressoController mc;
    SimOs os;
    BalloonDriver balloon;
    PressureGovernor gov;

    explicit Rig(const GovernorConfig &gc, uint64_t promised = 512)
        : mc([] {
              CompressoConfig c;
              c.installed_bytes = kInstalled;
              return c;
          }()),
          os(promised), balloon(os, mc), gov(gc, mc, os, balloon)
    {
    }
};

GovernorConfig
baseConfig()
{
    GovernorConfig gc;
    gc.total_chunks = kInstalled / kChunkBytes;
    return gc;
}

} // namespace

TEST(PressureGovernor, StartsNormalWithEmptyMachine)
{
    Rig rig(baseConfig());
    EXPECT_EQ(rig.gov.level(), PressureLevel::kNormal);
    EXPECT_DOUBLE_EQ(rig.gov.freeFraction(), 1.0);
}

TEST(PressureGovernor, LevelsFollowWatermarksWithHysteresis)
{
    Rig rig(baseConfig());
    auto &gov = rig.gov;

    // Push the free fraction below each watermark in turn.
    PageNum next = 0;
    auto fillTo = [&](double frac) {
        while (gov.freeFraction() >= frac && next < 400)
            writePage(rig.mc, rig.os, next++, DataClass::kRandom, 7);
        gov.poll();
    };
    fillTo(0.30);
    EXPECT_EQ(gov.level(), PressureLevel::kNormal);
    fillTo(0.25);
    EXPECT_EQ(gov.level(), PressureLevel::kElevated);
    fillTo(0.10);
    EXPECT_EQ(gov.level(), PressureLevel::kCritical);
    fillTo(0.03);
    EXPECT_EQ(gov.level(), PressureLevel::kEmergency);

    // Hysteresis: leaving a level needs the watermark plus the margin.
    PageNum victim = 0;
    auto freeTo = [&](double frac) {
        while (gov.freeFraction() <= frac && victim < next)
            rig.mc.freePage(victim++);
        gov.poll();
    };
    freeTo(0.04); // 0.03 cleared, but not 0.03 + 0.02
    EXPECT_EQ(gov.level(), PressureLevel::kEmergency);
    freeTo(0.055);
    EXPECT_EQ(gov.level(), PressureLevel::kCritical);
    freeTo(0.125);
    EXPECT_EQ(gov.level(), PressureLevel::kElevated);
    freeTo(0.28);
    EXPECT_EQ(gov.level(), PressureLevel::kNormal);
    EXPECT_GE(gov.stats().get("level_changes"), 6u);
}

TEST(PressureGovernor, AdmissionShedsOptionalWorkUnderPressure)
{
    GovernorConfig gc = baseConfig();
    gc.elevated_inflation_window = 2;
    Rig rig(gc);
    auto &gov = rig.gov;

    // Normal: everything is admitted.
    EXPECT_TRUE(gov.admitOp(PressureOp::kRepack, 16));
    EXPECT_TRUE(gov.admitOp(PressureOp::kInflation, 16));
    EXPECT_TRUE(gov.admitOp(PressureOp::kRelocation, 16));
    EXPECT_TRUE(gov.admitOp(PressureOp::kMetaRebuild, 16));

    // Elevated: inflation-room growth is windowed.
    PageNum next = 0;
    while (gov.freeFraction() >= 0.24 && next < 400)
        writePage(rig.mc, rig.os, next++, DataClass::kRandom, 9);
    gov.poll();
    ASSERT_EQ(gov.level(), PressureLevel::kElevated);
    EXPECT_TRUE(gov.admitOp(PressureOp::kRepack, 16));
    EXPECT_TRUE(gov.admitOp(PressureOp::kInflation, 16));
    EXPECT_TRUE(gov.admitOp(PressureOp::kInflation, 16));
    EXPECT_FALSE(gov.admitOp(PressureOp::kInflation, 16)); // window hit
    EXPECT_GE(gov.stats().get("denied_window"), 1u);
    gov.poll(); // new window
    EXPECT_TRUE(gov.admitOp(PressureOp::kInflation, 16));

    // Critical: repack and inflation shed; correctness paths stay.
    while (gov.freeFraction() >= 0.09 && next < 400)
        writePage(rig.mc, rig.os, next++, DataClass::kRandom, 9);
    gov.poll();
    ASSERT_GE(gov.level(), PressureLevel::kCritical);
    EXPECT_FALSE(gov.admitOp(PressureOp::kRepack, 16));
    EXPECT_FALSE(gov.admitOp(PressureOp::kInflation, 16));
    EXPECT_TRUE(gov.admitOp(PressureOp::kRelocation, 16));
    EXPECT_TRUE(gov.admitOp(PressureOp::kMetaRebuild, 16));
    EXPECT_GE(gov.stats().get("denied_level"), 2u);
}

TEST(PressureGovernor, WatchdogBreachDeniesEvenCorrectnessPaths)
{
    GovernorConfig gc = baseConfig();
    gc.watchdog.op_budget = {64, 64, 64, 64};
    gc.watchdog.denial_window = 2;
    Rig rig(gc);
    auto &gov = rig.gov;

    // A relocation blows its stall budget...
    gov.onOpCost(PressureOp::kRelocation, 1000);
    EXPECT_EQ(gov.watchdog().totalBreaches(), 1u);
    EXPECT_GE(gov.stats().get("watchdog_breaches"), 1u);
    // ...so the next admissions of that class are denied (the
    // controller escalates to the bounded safe state instead),
    // even though the level is still normal.
    EXPECT_EQ(gov.level(), PressureLevel::kNormal);
    EXPECT_FALSE(gov.admitOp(PressureOp::kRelocation, 8));
    EXPECT_FALSE(gov.admitOp(PressureOp::kRelocation, 8));
    EXPECT_TRUE(gov.admitOp(PressureOp::kRelocation, 8));
    EXPECT_GE(gov.stats().get("denied_watchdog"), 2u);
    // Unrelated classes are untouched.
    EXPECT_TRUE(gov.admitOp(PressureOp::kRepack, 8));
}

TEST(PressureGovernor, CostReportingRepollsAutomatically)
{
    GovernorConfig gc = baseConfig();
    gc.poll_interval_ops = 64;
    Rig rig(gc);
    auto &gov = rig.gov;

    // Fill past the elevated watermark *without* polling by hand: the
    // accumulated op cost must trigger the re-poll.
    PageNum next = 0;
    while (gov.freeFraction() >= 0.20 && next < 400)
        writePage(rig.mc, rig.os, next++, DataClass::kRandom, 13);
    uint64_t polls = gov.stats().get("polls");
    gov.onOpCost(PressureOp::kRepack, 65);
    EXPECT_GT(gov.stats().get("polls"), polls);
    EXPECT_GE(gov.level(), PressureLevel::kElevated);
}

TEST(PressureGovernor, OsOverrunForcesCritical)
{
    GovernorConfig gc = baseConfig();
    Rig rig(gc, /*promised=*/2);
    rig.os.swap().setCapacity(1);
    // Two dirty resident pages, swap already holding one page: the
    // next eviction has no safe victim.
    rig.os.touch(1, true);
    rig.os.touch(2, true);
    rig.os.touch(3, true); // fills the only swap slot
    rig.os.touch(4, true); // overrun: dirty victims, swap full
    EXPECT_GE(rig.gov.stats().get("os_overruns"), 1u);
    EXPECT_GE(rig.gov.level(), PressureLevel::kCritical);
}

TEST(PressureGovernor, EmergencyReclaimPrefersMostCompressible)
{
    GovernorConfig gc = baseConfig();
    gc.emergency_reclaim_pages = 4;
    Rig rig(gc);

    // 8 cheap constant pages and 8 expensive random pages, all cold.
    for (PageNum p = 0; p < 8; ++p)
        writePage(rig.mc, rig.os, p, DataClass::kConstant, 17);
    for (PageNum p = 8; p < 16; ++p)
        writePage(rig.mc, rig.os, p, DataClass::kRandom, 17);
    rig.balloon.drainFreed();

    uint64_t free_before = rig.gov.freeChunks();
    EXPECT_TRUE(rig.gov.onMachineOom(kNoPage));
    EXPECT_GT(rig.gov.freeChunks(), free_before);
    EXPECT_GE(rig.gov.stats().get("oom_rescued"), 1u);

    // The victims are the most-compressible pages (ties by page
    // number): the four lowest constant pages, never the random set.
    auto freed = rig.balloon.drainFreed();
    ASSERT_EQ(freed.size(), 4u);
    std::sort(freed.begin(), freed.end());
    for (size_t i = 0; i < freed.size(); ++i)
        EXPECT_EQ(freed[i], PageNum(i));
    EXPECT_TRUE(rig.mc.audit().clean());
}

TEST(PressureGovernor, OomMidWriteIsRescuedTransparently)
{
    // Drive a real allocation failure inside writebackLine and let the
    // governor rescue it: cold compressible pages are ballooned away,
    // the write retries and succeeds, and the audit stays clean.
    GovernorConfig gc = baseConfig();
    gc.emergency_reclaim_pages = 32;
    gc.candidate_scan = 256;
    Rig rig(gc, /*promised=*/512);

    // A cold compressible carpet the rescuer can harvest...
    for (PageNum p = 0; p < 150; ++p)
        writePage(rig.mc, rig.os, p, DataClass::kConstant, 19);
    // ...then hot random data until the machine would overflow.
    for (PageNum p = 150; p < 400; ++p)
        writePage(rig.mc, rig.os, p, DataClass::kRandom, 19);

    auto &stats = rig.gov.stats();
    EXPECT_GE(stats.get("oom_events"), 1u);
    EXPECT_GE(stats.get("oom_rescued"), 1u);
    EXPECT_GE(stats.get("emergency_pages"), 1u);
    // Every rescued OOM vanished from the controller's failure stat:
    // unrescued falls through to the legacy machine_oom accounting.
    EXPECT_EQ(rig.mc.stats().get("machine_oom"),
              stats.get("oom_unrescued"));
    EXPECT_TRUE(rig.mc.audit().clean());

    // The hot random data written after the rescue reads back intact.
    Line got, expect;
    McTrace tr;
    generateLine(DataClass::kRandom, Rng::mix(399, 0, 19), expect);
    rig.mc.fillLine(Addr(399) * kPageBytes, got, tr);
    EXPECT_EQ(got, expect);
}
