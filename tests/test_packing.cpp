/**
 * @file
 * Tests for LinePack and LCP page packing (Sec. II-C) and the page
 * sizing schemes (Sec. II-D).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "packing/lcp.h"
#include "packing/linepack.h"

using namespace compresso;

namespace {

std::array<LineSize, kLinesPerPage>
uniformSizes(uint16_t bytes, bool zero = false)
{
    std::array<LineSize, kLinesPerPage> s;
    for (auto &x : s)
        x = LineSize{bytes, zero};
    return s;
}

} // namespace

TEST(LinePack, AllZeroPagePacksToNothing)
{
    PageLayout lay = linePack(uniformSizes(0, true), compressoBins());
    EXPECT_EQ(lay.payload_bytes, 0u);
    EXPECT_EQ(lay.split_lines, 0u);
    for (auto b : lay.bin)
        EXPECT_EQ(b, 0);
}

TEST(LinePack, UniformEightBytePage)
{
    PageLayout lay = linePack(uniformSizes(8), compressoBins());
    EXPECT_EQ(lay.payload_bytes, 64u * 8);
    // 8 B lines at 8 B offsets never straddle 64 B boundaries.
    EXPECT_EQ(lay.split_lines, 0u);
    EXPECT_EQ(lay.offset[1], 8u);
    EXPECT_EQ(lay.offset[63], 63u * 8);
}

TEST(LinePack, OffsetsAreBinPrefixSums)
{
    std::array<LineSize, kLinesPerPage> sizes = uniformSizes(8);
    sizes[0].bytes = 30; // quantizes to 32
    sizes[1].bytes = 60; // quantizes to 64
    PageLayout lay = linePack(sizes, compressoBins());
    EXPECT_EQ(lay.offset[0], 0u);
    EXPECT_EQ(lay.offset[1], 32u);
    EXPECT_EQ(lay.offset[2], 96u);
    EXPECT_EQ(lay.offset[3], 104u);
    EXPECT_EQ(linePackOffset(lay.bin, compressoBins(), 3), 104u);
}

TEST(LinePack, LegacyBinsCauseSplits)
{
    // 22 B lines at 22 B strides straddle 64 B boundaries constantly.
    PageLayout legacy = linePack(uniformSizes(20), legacyBins());
    PageLayout aligned = linePack(uniformSizes(20), compressoBins());
    EXPECT_GE(legacy.split_lines, 20u);
    EXPECT_EQ(aligned.split_lines, 0u);
}

TEST(LinePack, AlignmentFriendlySplitsOnlyFromOddPrefixes)
{
    // A 32 B line at offset 40 (five 8 B lines before it) straddles
    // the 64 B boundary.
    std::array<LineSize, kLinesPerPage> sizes = uniformSizes(0, true);
    for (unsigned i = 0; i < 5; ++i)
        sizes[i] = LineSize{8, false};
    sizes[5] = LineSize{30, false};
    PageLayout lay = linePack(sizes, compressoBins());
    EXPECT_EQ(lay.split_lines, 1u);
}

TEST(PageBin, Chunked512RoundsUp)
{
    EXPECT_EQ(pageBinBytes(0, PageSizing::kChunked512), 0u);
    EXPECT_EQ(pageBinBytes(1, PageSizing::kChunked512), 512u);
    EXPECT_EQ(pageBinBytes(512, PageSizing::kChunked512), 512u);
    EXPECT_EQ(pageBinBytes(513, PageSizing::kChunked512), 1024u);
    EXPECT_EQ(pageBinBytes(4096, PageSizing::kChunked512), 4096u);
}

TEST(PageBin, Variable4UsesFourSizes)
{
    EXPECT_EQ(pageBinBytes(1, PageSizing::kVariable4), 512u);
    EXPECT_EQ(pageBinBytes(513, PageSizing::kVariable4), 1024u);
    EXPECT_EQ(pageBinBytes(1500, PageSizing::kVariable4), 2048u);
    EXPECT_EQ(pageBinBytes(2049, PageSizing::kVariable4), 4096u);
}

TEST(PageBin, ChunkedNeverLargerThanVariable)
{
    for (uint32_t payload = 0; payload <= 4096; payload += 37) {
        EXPECT_LE(pageBinBytes(payload, PageSizing::kChunked512),
                  pageBinBytes(payload, PageSizing::kVariable4))
            << payload;
    }
}

TEST(Lcp, UniformPagePicksTightTarget)
{
    LcpLayout lay = lcpPack(uniformSizes(8), compressoBins());
    EXPECT_EQ(lay.target_bytes, 8u);
    EXPECT_EQ(lay.exception_count, 0u);
    EXPECT_EQ(lay.payload_bytes, 64u * 8);
}

TEST(Lcp, OutliersBecomeExceptions)
{
    std::array<LineSize, kLinesPerPage> sizes = uniformSizes(8);
    sizes[10].bytes = 64;
    sizes[20].bytes = 50;
    LcpLayout lay = lcpPack(sizes, compressoBins());
    EXPECT_EQ(lay.target_bytes, 8u);
    EXPECT_EQ(lay.exception_count, 2u);
    EXPECT_TRUE(lay.exception[10]);
    EXPECT_TRUE(lay.exception[20]);
    EXPECT_EQ(lay.payload_bytes, 64u * 8 + 2 * 64);
}

TEST(Lcp, ZeroLinesFitAnyTarget)
{
    std::array<LineSize, kLinesPerPage> sizes = uniformSizes(0, true);
    sizes[0] = LineSize{8, false};
    LcpLayout lay = lcpPack(sizes, compressoBins());
    EXPECT_EQ(lay.target_bytes, 8u);
    EXPECT_EQ(lay.exception_count, 0u);
}

TEST(Lcp, ManyOutliersForceLargerTarget)
{
    std::array<LineSize, kLinesPerPage> sizes = uniformSizes(8);
    for (size_t i = 0; i < 40; ++i)
        sizes[i].bytes = 30;
    LcpLayout lay = lcpPack(sizes, compressoBins());
    // 40 exceptions at 64 B each dwarf the slot savings; target 32
    // with zero exceptions is cheaper.
    EXPECT_EQ(lay.target_bytes, 32u);
    EXPECT_EQ(lay.exception_count, 0u);
}

TEST(Lcp, OffsetsLinearAndExceptionsPastSlots)
{
    std::array<LineSize, kLinesPerPage> sizes = uniformSizes(8);
    sizes[5].bytes = 64;
    LcpLayout lay = lcpPack(sizes, compressoBins());
    EXPECT_EQ(lcpOffset(lay, 3, 0), 3u * 8);
    EXPECT_EQ(lcpOffset(lay, 5, 0), 64u * 8);
    EXPECT_EQ(lcpOffset(lay, 5, 2), 64u * 8 + 128);
}

TEST(LcpVsLinePack, LinePackNeverLarger)
{
    // Sec. II-C: LCP trades compression for offset simplicity; on any
    // size vector LinePack's payload is <= LCP's.
    Rng rng(123);
    for (int iter = 0; iter < 100; ++iter) {
        std::array<LineSize, kLinesPerPage> sizes;
        for (auto &s : sizes) {
            bool zero = rng.chance(0.2);
            s = LineSize{uint16_t(zero ? 0 : 1 + rng.below(64)), zero};
        }
        PageLayout lp = linePack(sizes, compressoBins());
        LcpLayout lcp = lcpPack(sizes, compressoBins());
        EXPECT_LE(lp.payload_bytes, lcp.payload_bytes);
    }
}
