/**
 * @file
 * Unit tests for the bit-granular streams underlying all codecs.
 */

#include <gtest/gtest.h>

#include "common/bitstream.h"
#include "common/rng.h"

using namespace compresso;

TEST(BitWriter, EmptyStream)
{
    BitWriter w;
    EXPECT_EQ(w.bitSize(), 0u);
    EXPECT_EQ(w.byteSize(), 0u);
    EXPECT_TRUE(w.bytes().empty());
}

TEST(BitWriter, SingleBits)
{
    BitWriter w;
    w.put(1, 1);
    w.put(0, 1);
    w.put(1, 1);
    EXPECT_EQ(w.bitSize(), 3u);
    EXPECT_EQ(w.byteSize(), 1u);
    // MSB-first: 101xxxxx.
    EXPECT_EQ(w.bytes()[0], 0b10100000);
}

TEST(BitWriter, ValueIsMasked)
{
    BitWriter w;
    w.put(0xff, 4); // only the low 4 bits should be kept
    EXPECT_EQ(w.bytes()[0], 0xf0);
}

TEST(BitWriter, CrossByteBoundary)
{
    BitWriter w;
    w.put(0b101, 3);
    w.put(0b111111, 6); // spans into the second byte
    EXPECT_EQ(w.bitSize(), 9u);
    EXPECT_EQ(w.byteSize(), 2u);
    EXPECT_EQ(w.bytes()[0], 0b10111111);
    EXPECT_EQ(w.bytes()[1], 0b10000000);
}

TEST(BitWriter, ZeroWidthPutIsNoop)
{
    BitWriter w;
    w.put(123, 0);
    EXPECT_EQ(w.bitSize(), 0u);
}

TEST(BitWriter, SixtyFourBitValue)
{
    BitWriter w;
    w.put(0xdeadbeefcafebabeULL, 64);
    ASSERT_EQ(w.byteSize(), 8u);
    BitReader r(w.bytes());
    EXPECT_EQ(r.get(64), 0xdeadbeefcafebabeULL);
}

TEST(BitReader, ReadBack)
{
    BitWriter w;
    w.put(0b1101, 4);
    w.put(0x3a, 8);
    w.put(1, 1);
    BitReader r(w.bytes().data(), w.bitSize());
    EXPECT_EQ(r.get(4), 0b1101u);
    EXPECT_EQ(r.get(8), 0x3au);
    EXPECT_EQ(r.get(1), 1u);
    EXPECT_FALSE(r.overrun());
}

TEST(BitReader, OverrunReturnsZeroAndFlags)
{
    BitWriter w;
    w.put(0b1, 1);
    BitReader r(w.bytes().data(), w.bitSize());
    EXPECT_EQ(r.get(1), 1u);
    EXPECT_EQ(r.get(4), 0u);
    EXPECT_TRUE(r.overrun());
}

TEST(BitReader, PeekDoesNotConsume)
{
    BitWriter w;
    w.put(0b1011, 4);
    BitReader r(w.bytes().data(), w.bitSize());
    EXPECT_EQ(r.peek(2), 0b10u);
    EXPECT_EQ(r.pos(), 0u);
    EXPECT_EQ(r.get(4), 0b1011u);
}

TEST(BitReader, RemainingTracksPosition)
{
    BitWriter w;
    w.put(0xabcd, 16);
    BitReader r(w.bytes().data(), w.bitSize());
    EXPECT_EQ(r.remaining(), 16u);
    r.get(5);
    EXPECT_EQ(r.remaining(), 11u);
}

/** Property: any sequence of (value, width) writes reads back
 *  identically. */
TEST(BitStream, RandomRoundTrip)
{
    Rng rng(42);
    for (int iter = 0; iter < 200; ++iter) {
        BitWriter w;
        std::vector<std::pair<uint64_t, unsigned>> items;
        unsigned n = 1 + unsigned(rng.below(64));
        for (unsigned i = 0; i < n; ++i) {
            unsigned width = 1 + unsigned(rng.below(64));
            uint64_t value = rng.next();
            if (width < 64)
                value &= (uint64_t(1) << width) - 1;
            items.emplace_back(value, width);
            w.put(value, width);
        }
        BitReader r(w.bytes().data(), w.bitSize());
        for (auto [value, width] : items)
            ASSERT_EQ(r.get(width), value);
        EXPECT_FALSE(r.overrun());
    }
}
