/**
 * @file
 * Functional and behavioural tests for the Compresso controller: data
 * integrity through compression/packing/overflow/repacking, plus the
 * stat-visible behaviour of each Sec. IV optimization.
 */

#include <gtest/gtest.h>

#include "core/compresso_controller.h"
#include "workloads/datagen.h"

using namespace compresso;

namespace {

CompressoConfig
baseConfig()
{
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(64) << 20; // 64 MB arena
    cfg.mdcache.size_bytes = 16 * 1024;       // small, evicts sooner
    return cfg;
}

Line
classLine(DataClass c, uint64_t seed)
{
    Line l;
    generateLine(c, seed, l);
    return l;
}

Addr
addrOf(PageNum page, unsigned line)
{
    return Addr(page) * kPageBytes + Addr(line) * kLineBytes;
}

void
writeLine(CompressoController &mc, Addr a, const Line &data)
{
    McTrace tr;
    mc.writebackLine(a, data, tr);
}

Line
readLine(CompressoController &mc, Addr a, McTrace *out_trace = nullptr)
{
    Line data;
    McTrace tr;
    mc.fillLine(a, data, tr);
    if (out_trace)
        *out_trace = tr;
    return data;
}

} // namespace

TEST(Compresso, UntouchedPageReadsZero)
{
    CompressoController mc(baseConfig());
    McTrace tr;
    Line data = readLine(mc, addrOf(5, 3), &tr);
    EXPECT_TRUE(isZeroLine(data));
    // Metadata-only: no data device ops.
    for (const auto &op : tr.ops)
        EXPECT_GE(op.addr, Addr(1) << 40);
    EXPECT_EQ(mc.stats().get("zero_fills"), 1u);
}

TEST(Compresso, WriteReadRoundTripSingleLine)
{
    CompressoController mc(baseConfig());
    Line in = classLine(DataClass::kDeltaInt, 7);
    writeLine(mc, addrOf(1, 10), in);
    EXPECT_EQ(readLine(mc, addrOf(1, 10)), in);
    // Other lines of the page still read zero.
    EXPECT_TRUE(isZeroLine(readLine(mc, addrOf(1, 11))));
}

TEST(Compresso, RoundTripEveryDataClass)
{
    CompressoController mc(baseConfig());
    for (size_t c = 0; c < kNumDataClasses; ++c) {
        Line in = classLine(DataClass(c), 11 + c);
        Addr a = addrOf(2, unsigned(c));
        writeLine(mc, a, in);
        EXPECT_EQ(readLine(mc, a), in) << dataClassName(DataClass(c));
    }
}

TEST(Compresso, FullPageRoundTripMixedData)
{
    CompressoController mc(baseConfig());
    Rng rng(99);
    std::array<Line, kLinesPerPage> image;
    for (unsigned l = 0; l < kLinesPerPage; ++l) {
        DataClass c = DataClass(rng.below(kNumDataClasses));
        image[l] = classLine(c, rng.next());
        writeLine(mc, addrOf(3, l), image[l]);
    }
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        ASSERT_EQ(readLine(mc, addrOf(3, l)), image[l]) << l;
}

TEST(Compresso, OverwriteStableUnderChurn)
{
    // Repeatedly rewrite lines with different classes; the latest
    // write must always win despite overflows/IR/repacks.
    CompressoConfig cfg = baseConfig();
    cfg.mdcache.size_bytes = 2 * 1024; // force evictions => repacks
    CompressoController mc(cfg);
    Rng rng(123);
    std::unordered_map<Addr, Line> image;
    for (int iter = 0; iter < 4000; ++iter) {
        PageNum page = rng.below(8);
        unsigned line = unsigned(rng.below(kLinesPerPage));
        Addr a = addrOf(page, line);
        if (rng.chance(0.6)) {
            Line data =
                classLine(DataClass(rng.below(kNumDataClasses)),
                          rng.next());
            writeLine(mc, a, data);
            image[a] = data;
        } else {
            Line expect{};
            auto it = image.find(a);
            if (it != image.end())
                expect = it->second;
            ASSERT_EQ(readLine(mc, a), expect)
                << "page " << page << " line " << line;
        }
    }
    // Final sweep: everything still intact.
    for (const auto &[a, data] : image)
        ASSERT_EQ(readLine(mc, a), data);
}

TEST(Compresso, ZeroWritebacksAreMetadataOnly)
{
    CompressoController mc(baseConfig());
    Line zero{};
    McTrace tr;
    mc.writebackLine(addrOf(4, 0), zero, tr);
    for (const auto &op : tr.ops)
        EXPECT_GE(op.addr, Addr(1) << 40);
    EXPECT_EQ(mc.stats().get("zero_wbs"), 1u);
    EXPECT_EQ(mc.mpaDataBytes(), 0u);
}

TEST(Compresso, ZeroPageUsesNoChunks)
{
    CompressoController mc(baseConfig());
    writeLine(mc, addrOf(6, 0), Line{});
    EXPECT_EQ(mc.pageMeta(6).chunks, 0);
    EXPECT_TRUE(mc.pageMeta(6).zero);
    EXPECT_EQ(mc.ospaBytes(), kPageBytes);
}

TEST(Compresso, CompressiblePageUsesFewChunks)
{
    CompressoController mc(baseConfig());
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        writeLine(mc, addrOf(7, l), classLine(DataClass::kDeltaInt, l));
    // 64 lines at 8 B bins = 512 B => 1 chunk.
    EXPECT_LE(mc.pageMeta(7).chunks, 2);
    EXPECT_GT(mc.compressionRatio(), 3.0);
}

TEST(Compresso, IncompressibleLineOverflowGoesToInflationRoom)
{
    CompressoController mc(baseConfig());
    // Two small lines; the second makes line 0's tail non-empty so
    // growing line 0 is a real (data-moving) overflow.
    writeLine(mc, addrOf(8, 0), classLine(DataClass::kSmallInt, 1));
    writeLine(mc, addrOf(8, 1), classLine(DataClass::kSmallInt, 9));
    uint64_t before = mc.stats().get("line_overflows");
    // Rewrite line 0 with incompressible data: bin grows.
    Line big = classLine(DataClass::kRandom, 2);
    writeLine(mc, addrOf(8, 0), big);
    EXPECT_EQ(mc.stats().get("line_overflows"), before + 1);
    EXPECT_GE(mc.stats().get("ir_placements") +
                  mc.stats().get("dyn_ir_expansions") +
                  mc.stats().get("slot_growths"),
              1u);
    EXPECT_EQ(readLine(mc, addrOf(8, 0)), big);
}

TEST(Compresso, InflationRoomDisabledFallsBackToSlotGrowth)
{
    CompressoConfig cfg = baseConfig();
    cfg.inflation_room = false;
    cfg.dynamic_ir_expansion = false;
    cfg.overflow_prediction = false;
    CompressoController mc(cfg);
    writeLine(mc, addrOf(9, 0), classLine(DataClass::kSmallInt, 1));
    writeLine(mc, addrOf(9, 1), classLine(DataClass::kSmallInt, 2));
    Line big = classLine(DataClass::kRandom, 3);
    writeLine(mc, addrOf(9, 0), big);
    EXPECT_GE(mc.stats().get("slot_growths"), 1u);
    EXPECT_EQ(mc.stats().get("ir_placements"), 0u);
    EXPECT_EQ(readLine(mc, addrOf(9, 0)), big);
    EXPECT_EQ(readLine(mc, addrOf(9, 1)),
              classLine(DataClass::kSmallInt, 2));
}

TEST(Compresso, DynamicIrExpansionAllocatesChunk)
{
    CompressoConfig cfg = baseConfig();
    cfg.overflow_prediction = false; // isolate the IR mechanics
    CompressoController mc(cfg);
    // Fill a page completely with 8 B-bin lines: 512 B, 1 chunk, no
    // spare space for an inflation room. A unit-stride sequence is
    // guaranteed to compress into the 8 B bin under BPC.
    for (unsigned l = 0; l < kLinesPerPage; ++l) {
        Line smooth;
        for (size_t i = 0; i < 16; ++i)
            setLineWord32(smooth, i, uint32_t(100 * l + i));
        writeLine(mc, addrOf(10, l), smooth);
    }
    ASSERT_EQ(mc.pageMeta(10).chunks, 1);
    // Overflow one line: the IR cannot fit in chunk 0 => expansion.
    writeLine(mc, addrOf(10, 5), classLine(DataClass::kRandom, 50));
    EXPECT_GE(mc.stats().get("dyn_ir_expansions"), 1u);
    EXPECT_EQ(mc.pageMeta(10).chunks, 2);
    EXPECT_EQ(readLine(mc, addrOf(10, 5)),
              classLine(DataClass::kRandom, 50));
}

TEST(Compresso, RepackRecoversUnderflowedSpace)
{
    CompressoConfig cfg = baseConfig();
    cfg.mdcache.size_bytes = 1024; // 16 entries: quick evictions
    CompressoController mc(cfg);

    // Page full of random data: ~8 chunks.
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        writeLine(mc, addrOf(11, l), classLine(DataClass::kRandom, l));
    ASSERT_EQ(mc.pageMeta(11).chunks, 8);

    // Data becomes highly compressible.
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        writeLine(mc, addrOf(11, l),
                  classLine(DataClass::kDeltaInt, 100 + l));

    // Touch other pages until page 11's metadata entry is evicted,
    // which triggers the repack.
    for (PageNum p = 100; p < 200; ++p)
        writeLine(mc, addrOf(p, 0), classLine(DataClass::kSmallInt, p));

    EXPECT_GE(mc.stats().get("repacks"), 1u);
    EXPECT_LE(mc.pageMeta(11).chunks, 2);
    // Data integrity across the repack.
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        ASSERT_EQ(readLine(mc, addrOf(11, l)),
                  classLine(DataClass::kDeltaInt, 100 + l));
}

TEST(Compresso, NoRepackWhenDisabled)
{
    CompressoConfig cfg = baseConfig();
    cfg.repack_on_evict = false;
    cfg.mdcache.size_bytes = 1024;
    CompressoController mc(cfg);
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        writeLine(mc, addrOf(12, l), classLine(DataClass::kRandom, l));
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        writeLine(mc, addrOf(12, l), classLine(DataClass::kZero, 0));
    for (PageNum p = 300; p < 400; ++p)
        writeLine(mc, addrOf(p, 0), classLine(DataClass::kSmallInt, p));
    EXPECT_EQ(mc.stats().get("repacks"), 0u);
}

TEST(Compresso, PredictorInflatesStreamingPage)
{
    CompressoConfig cfg = baseConfig();
    cfg.mdcache.size_bytes = 64 * 1024; // keep entries resident
    CompressoController mc(cfg);

    // Streaming pattern over several zero pages: write zeros first,
    // then overwrite everything with random data. LLC evictions reach
    // memory out of order, so the overwrite runs back to front; every
    // grown line then has live data after it (real overflows).
    for (PageNum p = 20; p < 26; ++p)
        for (unsigned l = 0; l < kLinesPerPage; ++l)
            writeLine(mc, addrOf(p, l), Line{});
    for (PageNum p = 20; p < 26; ++p)
        for (int l = kLinesPerPage - 1; l >= 0; --l)
            writeLine(mc, addrOf(p, unsigned(l)),
                      classLine(DataClass::kRandom, p * 64 + l));

    EXPECT_GE(mc.stats().get("predictor_inflations"), 1u);
    // Integrity preserved.
    for (PageNum p = 20; p < 26; ++p)
        for (unsigned l = 0; l < kLinesPerPage; ++l)
            ASSERT_EQ(readLine(mc, addrOf(p, l)),
                      classLine(DataClass::kRandom, p * 64 + l));
}

TEST(Compresso, PredictionDisabledNeverInflates)
{
    CompressoConfig cfg = baseConfig();
    cfg.overflow_prediction = false;
    CompressoController mc(cfg);
    for (PageNum p = 30; p < 34; ++p)
        for (unsigned l = 0; l < kLinesPerPage; ++l)
            writeLine(mc, addrOf(p, l), Line{});
    for (PageNum p = 30; p < 34; ++p)
        for (int l = kLinesPerPage - 1; l >= 0; --l)
            writeLine(mc, addrOf(p, unsigned(l)),
                      classLine(DataClass::kRandom, p * 64 + l));
    EXPECT_EQ(mc.stats().get("predictor_inflations"), 0u);
}

TEST(Compresso, SplitLinesRareWithAlignedBins)
{
    CompressoConfig aligned = baseConfig();
    CompressoConfig legacy = baseConfig();
    legacy.alignment_friendly = false;

    CompressoController a(aligned), b(legacy);
    Rng rng(5);
    for (PageNum p = 0; p < 16; ++p) {
        for (unsigned l = 0; l < kLinesPerPage; ++l) {
            Line d = classLine(
                rng.chance(0.5) ? DataClass::kFloat : DataClass::kText,
                rng.next());
            writeLine(a, addrOf(p, l), d);
            writeLine(b, addrOf(p, l), d);
        }
    }
    McTrace tr;
    for (PageNum p = 0; p < 16; ++p)
        for (unsigned l = 0; l < kLinesPerPage; ++l) {
            readLine(a, addrOf(p, l));
            readLine(b, addrOf(p, l));
        }
    EXPECT_LT(a.stats().get("split_fill_lines") + 1,
              b.stats().get("split_fill_lines") + 1);
}

TEST(Compresso, FreePageReleasesChunks)
{
    CompressoController mc(baseConfig());
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        writeLine(mc, addrOf(40, l), classLine(DataClass::kRandom, l));
    EXPECT_GT(mc.mpaDataBytes(), 0u);
    mc.freePage(40);
    EXPECT_EQ(mc.mpaDataBytes(), 0u);
    EXPECT_EQ(mc.ospaBytes(), 0u);
    EXPECT_TRUE(isZeroLine(readLine(mc, addrOf(40, 0))));
}

TEST(Compresso, MetadataAccounting)
{
    CompressoController mc(baseConfig());
    writeLine(mc, addrOf(50, 0), classLine(DataClass::kSmallInt, 1));
    writeLine(mc, addrOf(51, 0), classLine(DataClass::kSmallInt, 2));
    EXPECT_EQ(mc.mpaMetadataBytes(), 2 * kMetadataEntryBytes);
    EXPECT_EQ(mc.ospaBytes(), 2 * kPageBytes);
}

TEST(Compresso, CompressionRatioReportsAverage)
{
    CompressoController mc(baseConfig());
    // One incompressible page (8 chunks) + one compressible (1 chunk).
    for (unsigned l = 0; l < kLinesPerPage; ++l) {
        writeLine(mc, addrOf(60, l), classLine(DataClass::kRandom, l));
        writeLine(mc, addrOf(61, l), classLine(DataClass::kDeltaInt, l));
    }
    double ratio = mc.compressionRatio();
    EXPECT_GT(ratio, 1.2);
    EXPECT_LT(ratio, 3.0);
}

TEST(Compresso, RepackAllReachesSteadyState)
{
    CompressoConfig cfg = baseConfig();
    CompressoController mc(cfg);
    for (PageNum p = 70; p < 74; ++p)
        for (unsigned l = 0; l < kLinesPerPage; ++l)
            writeLine(mc, addrOf(p, l), classLine(DataClass::kRandom, l));
    for (PageNum p = 70; p < 74; ++p)
        for (unsigned l = 0; l < kLinesPerPage; ++l)
            writeLine(mc, addrOf(p, l), Line{});
    mc.repackAll();
    // Everything became zero: all chunks released.
    EXPECT_EQ(mc.mpaDataBytes(), 0u);
    for (PageNum p = 70; p < 74; ++p)
        EXPECT_TRUE(mc.pageMeta(p).zero);
}
