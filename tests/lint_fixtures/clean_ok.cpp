// Fixture: idiomatic code — the linter must report nothing here.
// Never compiled; scanned by run_lint_fixtures.py.
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

struct CleanComponent
{
    void
    hotPath()
    {
        CPR_PROF_SCOPE(ProfPhase::kMcFill);
        ++st_fills_;               // cached handle: allowed
        hist_add(latency_hist_, 3); // no name lookup
    }

    void
    report()
    {
        // Cold path: name-based lookup is fine outside PROF blocks.
        ++stats_["report_rows"];
    }

    void
    timing()
    {
        // steady_clock is the blessed host-timing source.
        auto t0 = std::chrono::steady_clock::now();
        (void)t0;
    }

    void
    lifetimes()
    {
        auto owned = std::make_unique<int>(7);
        std::vector<int> pool(64);
        (void)owned;
        (void)pool;
    }

    void hist_add(void *h, uint64_t v);

    StatGroup stats_{"mc"};
    uint64_t &st_fills_ = stats_.stat("fills");
    void *latency_hist_ = nullptr;
};
