// Fixture: raw std sync primitives outside common/sync.h.
// Never compiled; scanned by run_lint_fixtures.py.
#include <mutex>

struct BadRawSync
{
    void
    touch()
    {
        std::lock_guard<std::mutex> lk(mu_); // LINT: raw-sync-primitive
        ++count_;
    }

    void
    wait()
    {
        std::unique_lock<std::mutex> lk(mu_); // LINT: raw-sync-primitive
        cv_.wait(lk);
    }

    std::mutex mu_;                // LINT: raw-sync-primitive
    std::recursive_mutex rmu_;     // LINT: raw-sync-primitive
    std::shared_mutex smu_;        // LINT: raw-sync-primitive
    std::condition_variable cv_;   // LINT: raw-sync-primitive
    std::once_flag once_;          // LINT: raw-sync-primitive
    pthread_mutex_t pmu_;          // LINT: raw-sync-primitive
    int pthread_init = pthread_mutex_init(&pmu_, nullptr); // LINT: raw-sync-primitive
    int count_ = 0;
};

// The string/comment classifier must not fire on these:
// std::mutex in a comment is fine.
const char *kDoc = "uses std::mutex internally";
