#!/usr/bin/env python3
"""Driver for the compresso_lint fixture suite (ctest: lint_fixtures).

Runs tools/compresso_lint.py over tests/lint_fixtures/ and asserts
exact agreement with the in-file markers:

    // LINT: <rule>            an unsuppressed finding on this line
    // LINT-SUPPRESSED: <rule> a finding fired here but a valid
                               suppression covered it

Agreement is checked in BOTH directions — a marker that does not fire
and a finding without a marker are both failures — so the fixtures pin
each rule's true-positive *and* false-positive behavior.

The lexical engine is used explicitly: it is the engine available in
every environment (CI additionally exercises the default auto engine
on src/), and pinning it keeps the expected line/column set stable.
"""

import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

FIXTURE_DIR = Path(__file__).resolve().parent
REPO_ROOT = FIXTURE_DIR.parents[1]
LINTER = REPO_ROOT / "tools" / "compresso_lint.py"

MARKER_RE = re.compile(r"//\s*LINT(-SUPPRESSED)?:\s*([\w-]+)")


def expected_markers():
    live, suppressed = set(), set()
    for path in sorted(FIXTURE_DIR.glob("*.cpp")):
        rel = path.relative_to(REPO_ROOT).as_posix()
        for lineno, ln in enumerate(path.read_text().splitlines(), 1):
            for m in MARKER_RE.finditer(ln):
                (suppressed if m.group(1) else live).add(
                    (rel, lineno, m.group(2))
                )
    return live, suppressed


def main() -> int:
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tf:
        report_path = tf.name
    proc = subprocess.run(
        [
            sys.executable,
            str(LINTER),
            str(FIXTURE_DIR),
            "--engine",
            "lexical",
            "--json",
            report_path,
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    doc = json.loads(Path(report_path).read_text())

    def key(f):
        # Report paths are as given on the command line (absolute here);
        # normalize to repo-relative to match the marker keys.
        rel = Path(f["file"])
        if rel.is_absolute():
            rel = rel.relative_to(REPO_ROOT)
        return (rel.as_posix(), f["line"], f["rule"])

    got_live = {key(f) for f in doc["findings"]}
    got_supp = {key(f) for f in doc["suppressed"]}
    want_live, want_supp = expected_markers()

    failures = []
    for name, got, want in (
        ("unsuppressed", got_live, want_live),
        ("suppressed", got_supp, want_supp),
    ):
        for miss in sorted(want - got):
            failures.append(f"expected {name} finding did not fire: "
                            f"{miss[0]}:{miss[1]} [{miss[2]}]")
        for extra in sorted(got - want):
            failures.append(f"unexpected {name} finding: "
                            f"{extra[0]}:{extra[1]} [{extra[2]}]")

    # The fixture set contains live findings, so the linter must have
    # signalled failure; and the clean/suppressed-only files must pass
    # when linted alone.
    if proc.returncode != 1:
        failures.append(
            f"linter exit code on fixtures was {proc.returncode}, want 1\n"
            f"stderr:\n{proc.stderr}"
        )
    clean = subprocess.run(
        [
            sys.executable,
            str(LINTER),
            str(FIXTURE_DIR / "clean_ok.cpp"),
            str(FIXTURE_DIR / "suppressed_ok.cpp"),
            "--engine",
            "lexical",
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if clean.returncode != 0:
        failures.append(
            f"clean+suppressed fixtures should exit 0, got "
            f"{clean.returncode}\nstderr:\n{clean.stderr}"
        )

    if failures:
        print("lint fixture FAILURES:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(
        f"lint fixtures OK: {len(want_live)} findings + "
        f"{len(want_supp)} suppressed, exact match"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
