// Fixture: raw new/delete outside the chunk allocator.
// Never compiled; scanned by run_lint_fixtures.py.
#include <memory>

struct Widget
{
    int x = 0;
};

void
badLifetimes()
{
    Widget *w = new Widget;      // LINT: raw-new-delete
    int *arr = new int[64];      // LINT: raw-new-delete
    delete w;                    // LINT: raw-new-delete
    delete[] arr;                // LINT: raw-new-delete
}

void
okLifetimes()
{
    auto w = std::make_unique<Widget>();
    (void)w;
}

struct NotCopyable
{
    // `= delete` declarations are not delete-expressions:
    NotCopyable(const NotCopyable &) = delete;
    NotCopyable &operator=(const NotCopyable &) = delete;
};
