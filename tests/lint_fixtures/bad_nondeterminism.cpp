// Fixture: wall-clock / libc randomness and hash-order exports.
// Never compiled; scanned by run_lint_fixtures.py.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <ostream>
#include <random>
#include <string>
#include <unordered_map>

uint64_t
badSeed()
{
    unsigned a = rand();                      // LINT: nondeterminism
    srand(42);                                // LINT: nondeterminism
    std::random_device rd;                    // LINT: nondeterminism
    long t = time(nullptr);                   // LINT: nondeterminism
    long c = clock();                         // LINT: nondeterminism
    auto now = std::chrono::system_clock::now(); // LINT: nondeterminism
    (void)now;
    return a + t + c + rd();
}

void
badExport(std::ostream &os,
          const std::unordered_map<std::string, int> &counters)
{
    for (const auto &kv : counters) {         // LINT: nondeterminism
        os << kv.first << "," << kv.second << "\n";
    }
}

void
okUses(std::ostream &os)
{
    // steady_clock is allowed (host-side timing, never exported as data).
    auto t0 = std::chrono::steady_clock::now();
    (void)t0;
    // Iterating an unordered container WITHOUT exporting is fine:
    std::unordered_map<std::string, int> local;
    int sum = 0;
    for (const auto &kv : local) {
        sum += kv.second;
    }
    os << sum;
    // Identifiers that merely contain the bad names are fine:
    int sim_time(int);
    int grand(int);
}
