// Fixture: valid suppressions — findings fire but are marked
// suppressed, and the file contributes no *unsuppressed* findings.
// Never compiled; scanned by run_lint_fixtures.py.
#include <cstdlib>
#include <mutex>

// End-of-line form covers its own line:
std::mutex g_legacy_mu; // compresso-lint: allow(raw-sync-primitive) -- fixture demo of eol suppression // LINT-SUPPRESSED: raw-sync-primitive

void
seeded()
{
    // Standalone form covers the next line:
    // compresso-lint: allow(nondeterminism) -- fixture demo of next-line suppression
    srand(1234); // LINT-SUPPRESSED: nondeterminism
}

// File-wide form (rule must still fire, as suppressed, on every hit):
// compresso-lint: allow-file(raw-new-delete) -- fixture demo of file-wide suppression

void
leaky()
{
    int *p = new int; // LINT-SUPPRESSED: raw-new-delete
    delete p;         // LINT-SUPPRESSED: raw-new-delete
}
