// Fixture: name-based StatGroup lookups inside a profiled hot block.
// Never compiled; scanned by run_lint_fixtures.py.
#include <cstdint>

struct BadStatGroup
{
    void
    hotPath()
    {
        CPR_PROF_SCOPE(ProfPhase::kMcFill);
        ++stats_["fills"];                  // LINT: statgroup-hot-path
        stats_["data_read_ops"] += 2;       // LINT: statgroup-hot-path
        ++stats_.stat("line_overflows");    // LINT: statgroup-hot-path
        ++st_fills_; // cached handle: the blessed idiom, no finding
    }

    void
    coldPath()
    {
        // No CPR_PROF_SCOPE here: name-based lookups are allowed on
        // cold paths (report assembly, one-shot setup).
        ++stats_["report_rows"];
        stats_.stat("summary_lines") += 1;
    }

    StatGroup stats_{"mc"};
    uint64_t &st_fills_ = stats_.stat("fills");
};
