// Fixture: malformed suppressions do not suppress and are themselves
// reported. Never compiled; scanned by run_lint_fixtures.py.
#include <cstdlib>

void
notActuallySuppressed()
{
    // Missing `-- reason`: the suppression is rejected AND the
    // underlying finding stays live.
    // compresso-lint: allow(nondeterminism) // LINT: bad-suppression
    int r = rand(); // LINT: nondeterminism
    (void)r;

    // Unknown rule id: rejected.
    // compresso-lint: allow(made-up-rule) -- nice try // LINT: bad-suppression
}
