/**
 * @file
 * Graceful-degradation tests: detected-uncorrectable faults walk the
 * ladder (correct -> rebuild metadata -> inflate to the safe state ->
 * poison) in every controller, poisoned lines heal on rewrite, and
 * recovery-off campaigns retire pages instead. Also covers the
 * system-level determinism guarantee (two identical fault campaigns
 * through runSystem produce identical ReliabilityReports) and — in
 * builds with both COMPRESSO_CHECKED_BUILD and COMPRESSO_FAULT_RECOVERY
 * — the audit-caught-corruption degrade path.
 */

#include <gtest/gtest.h>

#include "core/compresso_controller.h"
#include "core/dmc_controller.h"
#include "core/lcp_controller.h"
#include "core/rmc_controller.h"
#include "core/uncompressed_controller.h"
#include "sim/runner.h"
#include "workloads/datagen.h"

using namespace compresso;

namespace {

/** Every exposed *data* read suffers a double-bit upset (a DUE:
 *  p_event = min(1, 512 * rate) = 1 and every event flips two bits). */
FaultConfig
everyDataReadFaults()
{
    FaultConfig cfg;
    cfg.data_bit_rate = 1.0;
    cfg.double_bit_frac = 1.0;
    return cfg;
}

/** Every metadata fetch suffers a DUE; data reads are clean. */
FaultConfig
everyMetaFetchFaults()
{
    FaultConfig cfg;
    cfg.meta_bit_rate = 1.0;
    cfg.double_bit_frac = 1.0;
    return cfg;
}

Line
classLine(DataClass c, uint64_t seed)
{
    Line l;
    generateLine(c, seed, l);
    return l;
}

Addr
addrOf(PageNum page, unsigned line)
{
    return Addr(page) * kPageBytes + Addr(line) * kLineBytes;
}

void
writeLine(MemoryController &mc, Addr a, const Line &data)
{
    McTrace tr;
    mc.writebackLine(a, data, tr);
}

Line
readLine(MemoryController &mc, Addr a, McTrace *out_trace = nullptr)
{
    Line data;
    McTrace tr;
    mc.fillLine(a, data, tr);
    if (out_trace)
        *out_trace = tr;
    return data;
}

CompressoConfig
compressoConfig()
{
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(32) << 20;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// Data DUEs: poison the line, serve zeros, heal on rewrite.
// ---------------------------------------------------------------------

TEST(CompressoFaults, DataDuePoisonsLineAndHealsOnRewrite)
{
    CompressoController mc(compressoConfig());
    FaultInjector fi(everyDataReadFaults());
    mc.attachFaultInjector(&fi);

    Line in = classLine(DataClass::kDeltaInt, 7);
    writeLine(mc, addrOf(1, 3), in); // writes scrub: no fault yet

    // The demand read is exposed, takes a DUE, and the line is retired.
    McTrace tr;
    Line out = readLine(mc, addrOf(1, 3), &tr);
    EXPECT_TRUE(isZeroLine(out));
    EXPECT_EQ(mc.stats().get("fault_lines_poisoned"), 1u);
    EXPECT_GE(fi.report().detected_uncorrectable, 1u);
    EXPECT_EQ(fi.report().lines_poisoned, 1u);
    EXPECT_GT(fi.report().recovery_device_ops, 0u);

    // Subsequent fills serve the poison value without re-firing.
    EXPECT_TRUE(isZeroLine(readLine(mc, addrOf(1, 3))));
    EXPECT_EQ(mc.stats().get("fault_poison_fills"), 1u);
    EXPECT_EQ(mc.stats().get("fault_lines_poisoned"), 1u);

    // Untouched lines of other pages still read zero (metadata-only,
    // never exposed to data faults).
    EXPECT_TRUE(isZeroLine(readLine(mc, addrOf(2, 0))));

    // A writeback rewrites (scrubs) the line and heals the poison.
    writeLine(mc, addrOf(1, 3), in);
    mc.attachFaultInjector(nullptr); // stop injecting; read real data
    EXPECT_EQ(readLine(mc, addrOf(1, 3)), in);
    AuditReport rep = mc.audit();
    EXPECT_TRUE(rep.clean()) << rep.summary();
}

TEST(UncompressedFaults, DataDuePoisonsLineAndHealsOnRewrite)
{
    UncompressedController mc;
    FaultInjector fi(everyDataReadFaults());
    mc.attachFaultInjector(&fi);

    Line in = classLine(DataClass::kText, 9);
    writeLine(mc, addrOf(4, 1), in);
    EXPECT_TRUE(isZeroLine(readLine(mc, addrOf(4, 1))));
    EXPECT_EQ(mc.stats().get("fault_lines_poisoned"), 1u);
    EXPECT_TRUE(isZeroLine(readLine(mc, addrOf(4, 1))));
    EXPECT_EQ(mc.stats().get("fault_poison_fills"), 1u);

    writeLine(mc, addrOf(4, 1), in);
    mc.attachFaultInjector(nullptr);
    EXPECT_EQ(readLine(mc, addrOf(4, 1)), in);
}

TEST(DmcFaults, HotDataDuePoisonsLineAndHealsOnRewrite)
{
    DmcConfig cfg;
    cfg.installed_bytes = uint64_t(32) << 20;
    DmcController mc(cfg);
    FaultInjector fi(everyDataReadFaults());
    mc.attachFaultInjector(&fi);

    Line in = classLine(DataClass::kDeltaInt, 21);
    writeLine(mc, addrOf(2, 5), in);
    EXPECT_TRUE(isZeroLine(readLine(mc, addrOf(2, 5))));
    EXPECT_EQ(mc.stats().get("fault_lines_poisoned"), 1u);
    EXPECT_TRUE(isZeroLine(readLine(mc, addrOf(2, 5))));
    EXPECT_EQ(mc.stats().get("fault_poison_fills"), 1u);

    writeLine(mc, addrOf(2, 5), in);
    mc.attachFaultInjector(nullptr);
    EXPECT_EQ(readLine(mc, addrOf(2, 5)), in);
    AuditReport rep = mc.audit();
    EXPECT_TRUE(rep.clean()) << rep.summary();
}

TEST(RmcFaults, DataDuePoisonsLineAndHealsOnRewrite)
{
    RmcConfig cfg;
    cfg.installed_bytes = uint64_t(32) << 20;
    RmcController mc(cfg);
    FaultInjector fi(everyDataReadFaults());
    mc.attachFaultInjector(&fi);

    Line in = classLine(DataClass::kFloat, 33);
    writeLine(mc, addrOf(3, 7), in);
    EXPECT_TRUE(isZeroLine(readLine(mc, addrOf(3, 7))));
    EXPECT_EQ(mc.stats().get("fault_lines_poisoned"), 1u);

    writeLine(mc, addrOf(3, 7), in);
    mc.attachFaultInjector(nullptr);
    EXPECT_EQ(readLine(mc, addrOf(3, 7)), in);
    AuditReport rep = mc.audit();
    EXPECT_TRUE(rep.clean()) << rep.summary();
}

TEST(LcpFaults, DataDuePoisonsLineAndHealsOnRewrite)
{
    LcpConfig cfg;
    cfg.installed_bytes = uint64_t(32) << 20;
    LcpController mc(cfg);
    FaultInjector fi(everyDataReadFaults());
    mc.attachFaultInjector(&fi);

    Line in = classLine(DataClass::kDeltaInt, 55);
    writeLine(mc, addrOf(6, 2), in);
    EXPECT_TRUE(isZeroLine(readLine(mc, addrOf(6, 2))));
    EXPECT_EQ(mc.stats().get("fault_lines_poisoned"), 1u);

    writeLine(mc, addrOf(6, 2), in);
    mc.attachFaultInjector(nullptr);
    EXPECT_EQ(readLine(mc, addrOf(6, 2)), in);
    AuditReport rep = mc.audit();
    EXPECT_TRUE(rep.clean()) << rep.summary();
}

// ---------------------------------------------------------------------
// Metadata DUEs: bounded rebuilds, then escalation to the safe state.
// ---------------------------------------------------------------------

TEST(CompressoFaults, MetadataDueRebuildsThenInflates)
{
    CompressoController mc(compressoConfig());
    FaultInjector fi(everyMetaFetchFaults());
    mc.attachFaultInjector(&fi);

    // Every metadata-cache miss fetches the entry from the device and
    // takes a DUE; invalidating the cached entry forces misses.
    const PageNum pn = 1;
    Line in = classLine(DataClass::kDeltaInt, 11);
    writeLine(mc, addrOf(pn, 0), in); // miss -> rebuild #1 (fresh entry)
    EXPECT_EQ(mc.stats().get("fault_meta_rebuilds"), 1u);

    mc.metadataCache().invalidate(pn);
    EXPECT_EQ(readLine(mc, addrOf(pn, 0)), in); // rebuild #2
    EXPECT_EQ(mc.stats().get("fault_meta_rebuilds"), 2u);
    EXPECT_EQ(mc.stats().get("fault_pages_inflated"), 0u);

    // Third rebuild exceeds max_meta_rebuilds (2): the page escalates
    // to uncompressed 4 KB, the safe state whose identity layout no
    // longer depends on fragile metadata fields.
    mc.metadataCache().invalidate(pn);
    EXPECT_EQ(readLine(mc, addrOf(pn, 0)), in);
    EXPECT_EQ(mc.stats().get("fault_meta_rebuilds"), 3u);
    EXPECT_EQ(mc.stats().get("fault_pages_inflated"), 1u);
    EXPECT_EQ(fi.report().meta_rebuilds, 3u);
    EXPECT_EQ(fi.report().pages_inflated_safety, 1u);
    EXPECT_EQ(fi.report().pages_poisoned, 0u);

    // Data survived the whole ladder; the page audits clean.
    mc.attachFaultInjector(nullptr);
    EXPECT_EQ(readLine(mc, addrOf(pn, 0)), in);
    AuditReport rep = mc.audit();
    EXPECT_TRUE(rep.clean()) << rep.summary();
}

TEST(CompressoFaults, MetadataDueWithoutRecoveryPoisonsPage)
{
    CompressoController mc(compressoConfig());
    FaultConfig fcfg = everyMetaFetchFaults();
    fcfg.recover = false;
    FaultInjector fi(fcfg);
    mc.attachFaultInjector(&fi);

    const PageNum pn = 2;
    Line in = classLine(DataClass::kText, 13);
    writeLine(mc, addrOf(pn, 0), in); // entry still invalid: no poison
    EXPECT_EQ(mc.stats().get("fault_pages_poisoned"), 0u);

    // Once the page holds data, an unrecoverable metadata DUE means
    // the whole OSPA->MPA mapping is gone: retire the page.
    mc.metadataCache().invalidate(pn);
    EXPECT_TRUE(isZeroLine(readLine(mc, addrOf(pn, 0))));
    EXPECT_EQ(mc.stats().get("fault_pages_poisoned"), 1u);
    EXPECT_EQ(fi.report().pages_poisoned, 1u);
    EXPECT_EQ(fi.report().meta_rebuilds, 0u);

    // Fills serve poison; writebacks to the retired page are dropped.
    EXPECT_TRUE(isZeroLine(readLine(mc, addrOf(pn, 1))));
    EXPECT_GE(mc.stats().get("fault_poison_fills"), 1u);
    writeLine(mc, addrOf(pn, 0), in);
    EXPECT_EQ(mc.stats().get("fault_dropped_wbs"), 1u);

    // freePage is the OS remap: it clears the poison and the page is
    // usable again.
    mc.freePage(pn);
    mc.attachFaultInjector(nullptr);
    writeLine(mc, addrOf(pn, 0), in);
    EXPECT_EQ(readLine(mc, addrOf(pn, 0)), in);
}

TEST(LcpFaults, MetadataDueChargesOsPageFault)
{
    // OS-aware baseline: the rebuild is an OS service, so it stalls
    // for the page-fault cost (unlike Compresso's hardware re-walk).
    LcpConfig cfg;
    cfg.installed_bytes = uint64_t(32) << 20;
    LcpController mc(cfg);
    FaultInjector fi(everyMetaFetchFaults());
    mc.attachFaultInjector(&fi);

    const PageNum pn = 3;
    Line in = classLine(DataClass::kDeltaInt, 17);
    writeLine(mc, addrOf(pn, 4), in);
    uint64_t faults0 = mc.stats().get("page_faults");
    EXPECT_GE(mc.stats().get("fault_meta_rebuilds"), 1u);
    EXPECT_GE(faults0, 1u);

    mc.metadataCache().invalidate(pn);
    McTrace tr;
    EXPECT_EQ(readLine(mc, addrOf(pn, 4), &tr), in);
    EXPECT_GT(mc.stats().get("page_faults"), faults0);
    EXPECT_GE(tr.stall_cycles, cfg.page_fault_cycles);

    // Escalation re-lays the page out with a 64 B target.
    mc.metadataCache().invalidate(pn);
    EXPECT_EQ(readLine(mc, addrOf(pn, 4)), in);
    EXPECT_EQ(mc.stats().get("fault_pages_inflated"), 1u);
    EXPECT_EQ(fi.report().pages_inflated_safety, 1u);

    mc.attachFaultInjector(nullptr);
    EXPECT_EQ(readLine(mc, addrOf(pn, 4)), in);
    AuditReport rep = mc.audit();
    EXPECT_TRUE(rep.clean()) << rep.summary();
}

TEST(RmcFaults, MetadataDueRebuildsThenGoesRaw)
{
    // RMC has no test hook into its BST cache, so shrink it to a
    // single entry and alternate two pages to force misses.
    RmcConfig cfg;
    cfg.installed_bytes = uint64_t(32) << 20;
    cfg.bst = MetadataCacheConfig{kMetadataEntryBytes, 1, false};
    RmcController mc(cfg);
    FaultInjector fi(everyMetaFetchFaults());
    mc.attachFaultInjector(&fi);

    Line in_a = classLine(DataClass::kDeltaInt, 19);
    Line in_b = classLine(DataClass::kFloat, 23);
    writeLine(mc, addrOf(1, 0), in_a);
    writeLine(mc, addrOf(2, 0), in_b); // evicts page 1's BST entry

    // Each re-access of page 1 misses, takes a DUE, rebuilds; after
    // max_meta_rebuilds the page is re-laid out raw.
    for (unsigned round = 0; round < 4; ++round) {
        EXPECT_EQ(readLine(mc, addrOf(1, 0)), in_a) << round;
        EXPECT_EQ(readLine(mc, addrOf(2, 0)), in_b) << round;
    }
    EXPECT_GE(mc.stats().get("fault_meta_rebuilds"), 3u);
    EXPECT_GE(mc.stats().get("fault_pages_inflated"), 1u);
    EXPECT_GE(mc.stats().get("page_faults"), 3u); // OS-aware rebuilds

    mc.attachFaultInjector(nullptr);
    EXPECT_EQ(readLine(mc, addrOf(1, 0)), in_a);
    EXPECT_EQ(readLine(mc, addrOf(2, 0)), in_b);
    AuditReport rep = mc.audit();
    EXPECT_TRUE(rep.clean()) << rep.summary();
}

TEST(DmcFaults, MetadataDueRebuildsThenGoesRaw)
{
    DmcConfig cfg;
    cfg.installed_bytes = uint64_t(32) << 20;
    cfg.mdcache = MetadataCacheConfig{kMetadataEntryBytes, 1, false};
    DmcController mc(cfg);
    FaultInjector fi(everyMetaFetchFaults());
    mc.attachFaultInjector(&fi);

    Line in_a = classLine(DataClass::kDeltaInt, 29);
    Line in_b = classLine(DataClass::kText, 31);
    writeLine(mc, addrOf(1, 1), in_a);
    writeLine(mc, addrOf(2, 1), in_b);

    uint64_t stalls = 0;
    for (unsigned round = 0; round < 4; ++round) {
        McTrace tr;
        EXPECT_EQ(readLine(mc, addrOf(1, 1), &tr), in_a) << round;
        stalls += tr.stall_cycles;
        EXPECT_EQ(readLine(mc, addrOf(2, 1)), in_b) << round;
    }
    EXPECT_GE(mc.stats().get("fault_meta_rebuilds"), 3u);
    EXPECT_GE(mc.stats().get("fault_pages_inflated"), 1u);
    // OS-transparent: the hardware re-walk never stalls for the OS.
    EXPECT_EQ(mc.stats().get("page_faults"), 0u);
    EXPECT_EQ(stalls, 0u);

    mc.attachFaultInjector(nullptr);
    EXPECT_EQ(readLine(mc, addrOf(1, 1)), in_a);
    EXPECT_EQ(readLine(mc, addrOf(2, 1)), in_b);
    AuditReport rep = mc.audit();
    EXPECT_TRUE(rep.clean()) << rep.summary();
}

// ---------------------------------------------------------------------
// Audit-caught corruption degrades instead of aborting (checked builds
// with COMPRESSO_FAULT_RECOVERY and a recovering injector attached).
// ---------------------------------------------------------------------

TEST(CompressoFaults, AuditCaughtCorruptionDegradesInsteadOfAborting)
{
#if defined(COMPRESSO_CHECKED_BUILD) && defined(COMPRESSO_FAULT_RECOVERY)
    CompressoController mc(compressoConfig());
    FaultConfig fcfg; // no rates: only the planted corruption
    FaultInjector fi(fcfg);
    mc.attachFaultInjector(&fi);

    const PageNum pn = 0;
    for (unsigned l = 0; l < 8; ++l)
        writeLine(mc, addrOf(pn, l),
                  classLine(DataClass::kDeltaInt, 100 + l));
    ASSERT_TRUE(mc.audit().clean());

    // Plant an unrepairable-layout corruption (an invalid size-bin
    // code): the next checked audit catches it, and with a recovering
    // injector attached the page is retired instead of the process
    // aborting.
    mc.pageMetaForTest(pn).line_code[5] = 9;
    writeLine(mc, addrOf(pn, 0), classLine(DataClass::kDeltaInt, 100));
    EXPECT_EQ(mc.stats().get("fault_audit_recoveries"), 1u);
    EXPECT_EQ(fi.report().audit_recoveries, 1u);
    EXPECT_EQ(fi.report().pages_poisoned, 1u);
    EXPECT_TRUE(isZeroLine(readLine(mc, addrOf(pn, 3))));

    AuditReport rep = mc.audit();
    EXPECT_TRUE(rep.clean()) << rep.summary();
#else
    GTEST_SKIP() << "needs COMPRESSO_CHECKED_BUILD + "
                    "COMPRESSO_FAULT_RECOVERY";
#endif
}

// ---------------------------------------------------------------------
// System-level determinism: identical campaigns, identical reports.
// ---------------------------------------------------------------------

TEST(FaultCampaign, IdenticalSpecsProduceIdenticalReports)
{
    RunSpec spec;
    spec.kind = McKind::kCompresso;
    spec.workloads = {"gcc"};
    spec.refs_per_core = 20000;
    spec.warmup_refs = 2000;
    spec.fault.data_bit_rate = 1e-5;
    spec.fault.meta_bit_rate = 1e-6;
    spec.fault.double_bit_frac = 0.5;
    spec.fault.seed = 0xc0ffee;

    RunResult a = runSystem(spec);
    RunResult b = runSystem(spec);
    EXPECT_GT(a.reliability.injected(), 0u);
    EXPECT_TRUE(a.reliability == b.reliability);
    EXPECT_EQ(a.audit_violations, b.audit_violations);

    // A different seed perturbs the campaign (sanity check that the
    // comparison above is not vacuous).
    spec.fault.seed = 0xdecaf;
    RunResult c = runSystem(spec);
    EXPECT_FALSE(a.reliability == c.reliability);
}

TEST(FaultCampaign, RunnerExportsReliabilityAndEffectiveRatio)
{
    RunSpec spec;
    spec.kind = McKind::kCompresso;
    spec.workloads = {"gcc"};
    spec.refs_per_core = 10000;
    spec.warmup_refs = 1000;
    spec.fault.data_bit_rate = 1e-5;
    spec.fault.double_bit_frac = 0.5;

    RunResult r = runSystem(spec);
    EXPECT_GT(r.reliability.injected(), 0u);
    // Reliability counters are merged into the exported stat group.
    EXPECT_EQ(r.mc_stats.get("corrected"), r.reliability.corrected);
    // Metadata-inclusive ratio is strictly below the data-only ratio.
    EXPECT_GT(r.effective_ratio, 0.0);
    EXPECT_LT(r.effective_ratio, r.comp_ratio);
}
