/**
 * @file
 * Work-stealing thread-pool stress tests. These are the tests the
 * tsan CMake preset is pointed at: oversubscription (many more
 * workers than cores), steal-heavy floods of tiny tasks, reuse across
 * wait() generations, and drain-on-destruction. Every test asserts
 * the one invariant the campaign engine depends on: each submitted
 * task runs exactly once, and wait() does not return before the last
 * of them finished.
 */

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_pool.h"

using namespace compresso;

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    constexpr int kTasks = 500;
    std::vector<std::atomic<int>> ran(kTasks);
    for (auto &r : ran)
        r.store(0);
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&ran, i] { ran[i].fetch_add(1); });
    pool.wait();
    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(ran[i].load(), 1) << "task " << i;
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threads(), 1u);
    std::atomic<int> n{0};
    pool.submit([&n] { ++n; });
    pool.wait();
    EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately)
{
    ThreadPool pool(4);
    pool.wait(); // must not hang
    SUCCEED();
}

TEST(ThreadPool, OversubscriptionManyMoreWorkersThanCores)
{
    // 16 workers on (likely) far fewer cores: exercises contended
    // wakeups and the missed-notification path.
    ThreadPool pool(16);
    std::atomic<uint64_t> sum{0};
    constexpr uint64_t kTasks = 2000;
    for (uint64_t i = 1; i <= kTasks; ++i)
        pool.submit([&sum, i] { sum.fetch_add(i); });
    pool.wait();
    EXPECT_EQ(sum.load(), kTasks * (kTasks + 1) / 2);
}

TEST(ThreadPool, StealHeavyFloodOfTinyTasks)
{
    // Tiny tasks drain lanes instantly, so idle workers hammer the
    // steal path; several generations reuse the same pool.
    ThreadPool pool(8);
    std::atomic<uint64_t> done{0};
    for (int gen = 0; gen < 20; ++gen) {
        for (int i = 0; i < 200; ++i)
            pool.submit([&done] { done.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(done.load(), uint64_t(200) * (gen + 1));
    }
    // Steal telemetry is monotonic and bounded by the task count.
    EXPECT_LE(pool.steals(), uint64_t(20) * 200);
}

TEST(ThreadPool, UnevenTaskDurationsKeepCountsConsistent)
{
    ThreadPool pool(8);
    std::atomic<int> slow{0}, fast{0};
    for (int i = 0; i < 64; ++i) {
        if (i % 8 == 0)
            pool.submit([&slow] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
                ++slow;
            });
        else
            pool.submit([&fast] { ++fast; });
    }
    pool.wait();
    EXPECT_EQ(slow.load(), 8);
    EXPECT_EQ(fast.load(), 56);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> n{0};
    {
        ThreadPool pool(4);
        for (int i = 0; i < 100; ++i)
            pool.submit([&n] { ++n; });
        // No wait(): the destructor must drain before joining.
    }
    EXPECT_EQ(n.load(), 100);
}

TEST(ThreadPool, HardwareJobsNeverZero)
{
    EXPECT_GE(ThreadPool::hardwareJobs(), 1u);
}

TEST(ThreadPool, ConcurrentSubmittersEveryTaskRunsExactlyOnce)
{
    // Regression for the lane-cursor lock-discipline fix (DESIGN.md
    // §13): next_lane_ used to be an unsynchronized read-modify-write,
    // so racing submitters could tear the round-robin cursor. With the
    // cursor under mu_, submit() is safe from any thread; this is the
    // test the tsan preset points at to prove it dynamically.
    ThreadPool pool(4);
    constexpr int kSubmitters = 8;
    constexpr int kPerSubmitter = 250;
    std::vector<std::atomic<int>> ran(kSubmitters * kPerSubmitter);
    for (auto &r : ran)
        r.store(0);

    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&pool, &ran, s] {
            for (int i = 0; i < kPerSubmitter; ++i) {
                int idx = s * kPerSubmitter + i;
                pool.submit([&ran, idx] { ran[idx].fetch_add(1); });
            }
        });
    }
    // Join the submitters before wait(): the pool's contract says
    // wait() only covers tasks submitted before it is called.
    for (auto &th : submitters)
        th.join();
    pool.wait();

    for (size_t i = 0; i < ran.size(); ++i)
        EXPECT_EQ(ran[i].load(), 1) << "task " << i;
}
