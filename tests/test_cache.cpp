/**
 * @file
 * Tests for the cache model and the three-level hierarchy.
 */

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "cache/hierarchy.h"

using namespace compresso;

namespace {

CacheConfig
tiny(size_t lines, unsigned ways)
{
    return CacheConfig{lines * kLineBytes, ways, "t"};
}

} // namespace

TEST(Cache, MissThenHit)
{
    Cache c(tiny(8, 2));
    EXPECT_FALSE(c.access(0, false).hit);
    EXPECT_TRUE(c.access(0, false).hit);
}

TEST(Cache, SubLineAddressesAlias)
{
    Cache c(tiny(8, 2));
    c.access(0, false);
    EXPECT_TRUE(c.access(63, false).hit);
    EXPECT_FALSE(c.access(64, false).hit);
}

TEST(Cache, LruEvictionWithinSet)
{
    Cache c(tiny(8, 2)); // 4 sets, 2 ways
    // Three lines mapping to set 0: 0, 4*64, 8*64.
    c.access(0, false);
    c.access(4 * 64, false);
    c.access(0, false);          // refresh 0
    c.access(8 * 64, false);     // evicts 4*64
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(4 * 64));
}

TEST(Cache, DirtyVictimReportsWriteback)
{
    Cache c(tiny(2, 1)); // 2 sets, direct-mapped
    c.access(0, true);   // dirty
    CacheResult r = c.access(2 * 64, false); // same set, evicts 0
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victim_addr, 0u);
}

TEST(Cache, CleanVictimNoWriteback)
{
    Cache c(tiny(2, 1));
    c.access(0, false);
    CacheResult r = c.access(2 * 64, false);
    EXPECT_FALSE(r.writeback);
}

TEST(Cache, WriteHitDirties)
{
    Cache c(tiny(2, 1));
    c.access(0, false);
    c.access(0, true); // now dirty
    CacheResult r = c.access(2 * 64, false);
    EXPECT_TRUE(r.writeback);
}

TEST(Cache, InvalidateReportsDirtiness)
{
    Cache c(tiny(4, 2));
    c.access(0, true);
    bool dirty = false;
    EXPECT_TRUE(c.invalidate(0, dirty));
    EXPECT_TRUE(dirty);
    EXPECT_FALSE(c.contains(0));
    EXPECT_FALSE(c.invalidate(0, dirty));
}

TEST(Cache, StatsCount)
{
    Cache c(tiny(4, 2));
    c.access(0, false);
    c.access(0, false);
    c.access(64, true);
    EXPECT_EQ(c.stats().get("accesses"), 3u);
    EXPECT_EQ(c.stats().get("hits"), 1u);
    EXPECT_EQ(c.stats().get("misses"), 2u);
}

TEST(Hierarchy, L1HitFastPath)
{
    HierarchyConfig cfg;
    Hierarchy h(cfg);
    h.access(0, 0x1000, false); // miss everywhere
    HierarchyOutcome out = h.access(0, 0x1000, false);
    EXPECT_EQ(out.hit_level, 1u);
    EXPECT_EQ(out.hit_latency, cfg.l1_latency);
}

TEST(Hierarchy, MissReachesMemory)
{
    Hierarchy h(HierarchyConfig{});
    HierarchyOutcome out = h.access(0, 0x2000, false);
    EXPECT_EQ(out.hit_level, 0u);
    EXPECT_TRUE(out.memory_writebacks.empty());
}

TEST(Hierarchy, L2CatchesL1Evictions)
{
    HierarchyConfig cfg;
    cfg.l1_bytes = 2 * kLineBytes; // 2-line L1
    cfg.l1_ways = 1;
    Hierarchy h(cfg);
    h.access(0, 0, false);
    h.access(0, 2 * 64, false); // evicts 0 from L1 (clean)
    HierarchyOutcome out = h.access(0, 0, false);
    EXPECT_EQ(out.hit_level, 2u);
}

TEST(Hierarchy, DirtyDataSpillsToMemoryEventually)
{
    HierarchyConfig cfg;
    cfg.l1_bytes = 2 * kLineBytes;
    cfg.l1_ways = 1;
    cfg.l2_bytes = 4 * kLineBytes;
    cfg.l2_ways = 1;
    cfg.l3_bytes = 8 * kLineBytes;
    cfg.l3_ways = 1;
    Hierarchy h(cfg);

    h.access(0, 0, true); // dirty line 0
    // Touch enough conflicting lines to push line 0 out of all levels.
    unsigned spills = 0;
    for (unsigned i = 1; i < 64; ++i) {
        HierarchyOutcome out = h.access(0, Addr(i) * 8 * 64, false);
        spills += unsigned(out.memory_writebacks.size());
    }
    EXPECT_GE(spills, 1u);
}

TEST(Hierarchy, PerCorePrivateL1)
{
    HierarchyConfig cfg;
    cfg.cores = 2;
    Hierarchy h(cfg);
    h.access(0, 0x3000, false);
    // Core 1 misses its private L1/L2 but hits the shared L3.
    HierarchyOutcome out = h.access(1, 0x3000, false);
    EXPECT_EQ(out.hit_level, 3u);
}
