/**
 * @file
 * Tests for the invariant auditor (src/check): (1) randomized stress
 * replays mixed workloads through CompressoController under every
 * combination of the five optimization toggles and asserts audit() is
 * clean after every N operations; (2) the baseline controllers audit
 * clean through the common MemoryController::audit() interface;
 * (3) deliberate corruptions of every violation class — leaked chunk,
 * double-mapped chunk, use-after-release, stale free_space, invalid
 * size-bin code, zero page with storage, malformed inflation state,
 * layout overcommit — are detected and classified.
 */

#include <gtest/gtest.h>

#include "check/invariant_auditor.h"
#include "core/compresso_controller.h"
#include "core/dmc_controller.h"
#include "core/lcp_controller.h"
#include "core/rmc_controller.h"
#include "workloads/datagen.h"

using namespace compresso;

namespace {

/** Replay a seeded mixed fill/writeback workload. */
void
storm(MemoryController &mc, unsigned pages, unsigned ops,
      double write_frac, uint64_t seed, unsigned audit_every = 0)
{
    Rng rng(seed);
    Line data;
    for (unsigned i = 0; i < ops; ++i) {
        Addr a = Addr(rng.below(pages)) * kPageBytes +
                 rng.below(kLinesPerPage) * kLineBytes;
        McTrace tr;
        if (rng.chance(write_frac)) {
            generateLine(DataClass(rng.below(kNumDataClasses)),
                         rng.next(), data);
            mc.writebackLine(a, data, tr);
        } else {
            mc.fillLine(a, data, tr);
        }
        if (audit_every != 0 && (i + 1) % audit_every == 0) {
            AuditReport rep = mc.audit();
            ASSERT_TRUE(rep.clean())
                << "after op " << i << ":\n"
                << rep.summary();
        }
    }
}

/** Seed one page of @p mc with compressible data on every line. */
void
seedPage(CompressoController &mc, PageNum page,
         DataClass cls = DataClass::kDeltaInt)
{
    Line data;
    for (unsigned l = 0; l < kLinesPerPage; ++l) {
        generateLine(cls, page * kLinesPerPage + l, data);
        McTrace tr;
        mc.writebackLine(page * kPageBytes + l * kLineBytes, data, tr);
    }
}

CompressoConfig
smallConfig()
{
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(32) << 20;
    cfg.mdcache.size_bytes = 4 * 1024;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// Randomized stress under every toggle combination (Sec. IV-B).
// ---------------------------------------------------------------------

class AuditorToggleStress : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AuditorToggleStress, AuditCleanThroughout)
{
    unsigned mask = GetParam();
    CompressoConfig cfg = smallConfig();
    cfg.inflation_room = mask & 1u;
    cfg.overflow_prediction = mask & 2u;
    cfg.dynamic_ir_expansion = mask & 4u;
    cfg.repack_on_evict = mask & 8u;
    cfg.mdcache.half_entry_opt = mask & 16u;
    CompressoController mc(cfg);

    const unsigned kPages = 24;
    storm(mc, kPages, 1500, 0.7, Rng::mix(mask, 99),
          /*audit_every=*/250);

    // Free half the pages (balloon-release path), keep going.
    for (PageNum p = 0; p < kPages; p += 2)
        mc.freePage(p);
    {
        AuditReport rep = mc.audit();
        ASSERT_TRUE(rep.clean()) << rep.summary();
    }
    storm(mc, kPages, 800, 0.7, Rng::mix(mask, 7), /*audit_every=*/200);

    // Settle pending repacking, then tear everything down: the chunk
    // map must return to exactly-empty (no leaks survive a full free).
    mc.flush();
    {
        AuditReport rep = mc.audit();
        ASSERT_TRUE(rep.clean()) << "after flush:\n" << rep.summary();
    }
    for (PageNum p = 0; p < kPages; ++p)
        mc.freePage(p);
    AuditReport rep = mc.audit();
    EXPECT_TRUE(rep.clean()) << rep.summary();
    EXPECT_EQ(mc.mpaDataBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllToggleCombos, AuditorToggleStress,
                         ::testing::Range(0u, 32u),
                         [](const auto &info) {
                             return "mask" + std::to_string(info.param);
                         });

TEST(AuditorStress, LegacyBinsAndVariablePageSizing)
{
    CompressoConfig cfg = smallConfig();
    cfg.alignment_friendly = false; // 0/22/44/64 legacy bins
    cfg.page_sizing = PageSizing::kVariable4;
    CompressoController mc(cfg);
    storm(mc, 16, 2500, 0.6, 1234, /*audit_every=*/250);
    AuditReport rep = mc.audit();
    EXPECT_TRUE(rep.clean()) << rep.summary();
}

TEST(AuditorStress, EightBinAblation)
{
    CompressoConfig cfg = smallConfig();
    cfg.line_bins = &eightBins();
    CompressoController mc(cfg);
    storm(mc, 16, 2500, 0.6, 4321, /*audit_every=*/250);
    AuditReport rep = mc.audit();
    EXPECT_TRUE(rep.clean()) << rep.summary();
}

// ---------------------------------------------------------------------
// The common auditable interface: baselines audit clean too.
// ---------------------------------------------------------------------

TEST(AuditorBaselines, LcpRmcDmcAuditClean)
{
    LcpConfig lcp_cfg;
    lcp_cfg.installed_bytes = uint64_t(32) << 20;
    LcpController lcp(lcp_cfg);

    RmcConfig rmc_cfg;
    rmc_cfg.installed_bytes = uint64_t(32) << 20;
    RmcController rmc(rmc_cfg);

    DmcConfig dmc_cfg;
    dmc_cfg.installed_bytes = uint64_t(32) << 20;
    dmc_cfg.epoch_writebacks = 512; // force hot/cold migrations
    DmcController dmc(dmc_cfg);

    MemoryController *mcs[] = {&lcp, &rmc, &dmc};
    for (MemoryController *mc : mcs) {
        SCOPED_TRACE(mc->name());
        storm(*mc, 20, 4000, 0.7, 77, /*audit_every=*/500);
        for (PageNum p = 0; p < 20; ++p)
            mc->freePage(p);
        AuditReport rep = mc->audit();
        EXPECT_TRUE(rep.clean()) << rep.summary();
        EXPECT_EQ(mc->mpaDataBytes(), 0u);
    }
}

TEST(AuditorBaselines, DefaultControllerAuditIsClean)
{
    // Controllers without auditable state report clean via the base.
    CompressoConfig cfg = smallConfig();
    CompressoController mc(cfg);
    AuditReport rep = static_cast<MemoryController &>(mc).audit();
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.summary(), "audit: clean\n");
}

// ---------------------------------------------------------------------
// Deliberate corruption: every violation class must be detected.
// ---------------------------------------------------------------------

class AuditorCorruption : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        mc = std::make_unique<CompressoController>(smallConfig());
        seedPage(*mc, 0);
        ASSERT_TRUE(mc->audit().clean());
        ASSERT_GT(mc->pageMeta(0).chunks, 0u);
    }

    std::unique_ptr<CompressoController> mc;
};

TEST_F(AuditorCorruption, LeakedChunkDetected)
{
    // Allocate a chunk no metadata entry reaches.
    ASSERT_NE(mc->chunkAllocatorForTest().allocate(), kNoChunk);
    AuditReport rep = mc->audit();
    EXPECT_FALSE(rep.clean());
    EXPECT_GE(rep.count(ViolationKind::kChunkLeak), 1u)
        << rep.summary();
}

TEST_F(AuditorCorruption, DoubleMappedChunkDetected)
{
    seedPage(*mc, 1);
    MetadataEntry &m0 = mc->pageMetaForTest(0);
    MetadataEntry &m1 = mc->pageMetaForTest(1);
    m1.mpfn[0] = m0.mpfn[0]; // two pages now share one chunk
    AuditReport rep = mc->audit();
    EXPECT_GE(rep.count(ViolationKind::kChunkDoubleMap), 1u)
        << rep.summary();
    // The chunk page 1 abandoned is now leaked as well.
    EXPECT_GE(rep.count(ViolationKind::kChunkLeak), 1u);
}

TEST_F(AuditorCorruption, UseAfterReleaseDetected)
{
    // Release a chunk the metadata still points at.
    mc->chunkAllocatorForTest().release(mc->pageMeta(0).mpfn[0]);
    AuditReport rep = mc->audit();
    EXPECT_GE(rep.count(ViolationKind::kChunkDead), 1u)
        << rep.summary();
}

TEST_F(AuditorCorruption, StaleFreeSpaceDetected)
{
    MetadataEntry &m = mc->pageMetaForTest(0);
    m.free_space = uint16_t(m.free_space + 64);
    AuditReport rep = mc->audit();
    EXPECT_GE(rep.count(ViolationKind::kStaleFreeSpace), 1u)
        << rep.summary();
}

TEST_F(AuditorCorruption, InvalidSizeBinCodeDetected)
{
    // compressoBins() has 4 bins; any code >= 4 indexes nothing.
    mc->pageMetaForTest(0).line_code[5] = 9;
    AuditReport rep = mc->audit();
    EXPECT_GE(rep.count(ViolationKind::kBadSizeCode), 1u)
        << rep.summary();
}

TEST_F(AuditorCorruption, ZeroPageWithStorageDetected)
{
    // Page 2 becomes a valid zero page (all-zero writeback)...
    Line zero{};
    McTrace tr;
    mc->writebackLine(2 * kPageBytes, zero, tr);
    ASSERT_TRUE(mc->pageMeta(2).zero);
    // ...then is corrupted to own a chunk.
    MetadataEntry &m = mc->pageMetaForTest(2);
    m.chunks = 1;
    m.mpfn[0] = uint32_t(mc->chunkAllocatorForTest().allocate());
    AuditReport rep = mc->audit();
    EXPECT_GE(rep.count(ViolationKind::kZeroPageStorage), 1u)
        << rep.summary();
}

TEST_F(AuditorCorruption, FreedPageWithStorageDetected)
{
    ChunkNum c = mc->chunkAllocatorForTest().allocate();
    mc->freePage(0);
    MetadataEntry &m = mc->pageMetaForTest(0);
    ASSERT_FALSE(m.valid);
    m.chunks = 1;
    m.mpfn[0] = uint32_t(c);
    AuditReport rep = mc->audit();
    EXPECT_GE(rep.count(ViolationKind::kInvalidPageStorage), 1u)
        << rep.summary();
}

TEST_F(AuditorCorruption, DuplicateInflatePointersDetected)
{
    MetadataEntry &m = mc->pageMetaForTest(0);
    ASSERT_TRUE(m.compressed);
    m.inflate_count = 2;
    m.inflate_line[0] = 3;
    m.inflate_line[1] = 3;
    AuditReport rep = mc->audit();
    EXPECT_GE(rep.count(ViolationKind::kBadInflate), 1u)
        << rep.summary();
}

TEST_F(AuditorCorruption, OvercommitDetected)
{
    // Claim every line is stored raw while keeping the small
    // compressed allocation: 4 KB of layout in < 4 KB of chunks.
    MetadataEntry &m = mc->pageMetaForTest(0);
    ASSERT_LT(m.chunks, kChunksPerPage);
    m.line_code.fill(uint8_t(mc->lineBins().count() - 1));
    AuditReport rep = mc->audit();
    EXPECT_GE(rep.count(ViolationKind::kOvercommit), 1u)
        << rep.summary();
}

TEST_F(AuditorCorruption, MpfnPastCountDetected)
{
    MetadataEntry &m = mc->pageMetaForTest(0);
    ASSERT_LT(m.chunks, kChunksPerPage);
    m.mpfn[kChunksPerPage - 1] = m.mpfn[0];
    AuditReport rep = mc->audit();
    EXPECT_GE(rep.count(ViolationKind::kMpfnNotCleared), 1u)
        << rep.summary();
}

TEST_F(AuditorCorruption, OutOfRangeChunkDetected)
{
    // An id the allocator never handed out (past the frontier).
    mc->pageMetaForTest(0).mpfn[0] = (1u << 27);
    AuditReport rep = mc->audit();
    EXPECT_GE(rep.count(ViolationKind::kChunkOutOfRange), 1u)
        << rep.summary();
    // The real chunk it replaced is now unreachable.
    EXPECT_GE(rep.count(ViolationKind::kChunkLeak), 1u);
}

// ---------------------------------------------------------------------
// Auditor pieces standalone (no controller).
// ---------------------------------------------------------------------

TEST(ChunkCrossCheck, ComplementOfFreeList)
{
    ChunkAllocator alloc(16 * kChunkBytes);
    ChunkNum a = alloc.allocate();
    ChunkNum b = alloc.allocate();
    ChunkNum c = alloc.allocate();
    alloc.release(b);

    InvariantAuditor::ChunkCrossCheck xc;
    AuditReport rep;
    xc.mapChunk(1, a, rep);
    xc.mapChunk(2, c, rep);
    xc.finish(alloc, rep);
    EXPECT_TRUE(rep.clean()) << rep.summary();

    // Mapping the released chunk as well: use-after-release.
    InvariantAuditor::ChunkCrossCheck xc2;
    AuditReport rep2;
    xc2.mapChunk(1, a, rep2);
    xc2.mapChunk(2, c, rep2);
    xc2.mapChunk(3, b, rep2);
    xc2.finish(alloc, rep2);
    EXPECT_EQ(rep2.count(ViolationKind::kChunkDead), 1u)
        << rep2.summary();
}

TEST(ChunkCrossCheck, ReportsEveryLeakedChunkById)
{
    ChunkAllocator alloc(16 * kChunkBytes);
    alloc.allocate();
    alloc.allocate();
    InvariantAuditor::ChunkCrossCheck xc;
    AuditReport rep;
    xc.finish(alloc, rep);
    EXPECT_EQ(rep.count(ViolationKind::kChunkLeak), 2u);
}

TEST(AuditReportTest, SummaryNamesKindPageAndChunk)
{
    AuditReport rep;
    rep.add(ViolationKind::kChunkLeak, kNoPage, 42, "orphan");
    rep.add(ViolationKind::kStaleFreeSpace, 7, kNoChunk, "off by 64");
    std::string s = rep.summary();
    EXPECT_NE(s.find("chunk_leak"), std::string::npos);
    EXPECT_NE(s.find("chunk 42"), std::string::npos);
    EXPECT_NE(s.find("stale_free_space"), std::string::npos);
    EXPECT_NE(s.find("page 7"), std::string::npos);
    EXPECT_EQ(rep.count(ViolationKind::kChunkLeak), 1u);
    EXPECT_EQ(rep.count(ViolationKind::kOvercommit), 0u);
}
