/**
 * @file
 * Tests for the metadata cache, including the half-entry optimization
 * (Sec. IV-B5) and the eviction hook that triggers repacking
 * (Sec. IV-B4).
 */

#include <gtest/gtest.h>

#include <vector>

#include "meta/metadata_cache.h"

using namespace compresso;

namespace {

MetadataCacheConfig
tinyConfig(bool half_opt)
{
    MetadataCacheConfig cfg;
    cfg.size_bytes = 4 * kMetadataEntryBytes; // 4 entries
    cfg.ways = 4;                             // single set
    cfg.half_entry_opt = half_opt;
    return cfg;
}

} // namespace

TEST(MetadataCache, MissThenHit)
{
    MetadataCache c(tinyConfig(false));
    EXPECT_FALSE(c.access(1, false));
    EXPECT_TRUE(c.access(1, false));
    EXPECT_EQ(c.stats().get("misses"), 1u);
    EXPECT_EQ(c.stats().get("hits"), 1u);
}

TEST(MetadataCache, LruEviction)
{
    MetadataCache c(tinyConfig(false));
    for (PageNum p = 0; p < 4; ++p)
        c.access(p, false);
    c.access(0, false);  // refresh 0
    c.access(99, false); // evicts LRU = 1
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(1));
    EXPECT_TRUE(c.contains(99));
}

TEST(MetadataCache, HalfEntriesDoubleCapacity)
{
    MetadataCache c(tinyConfig(true));
    for (PageNum p = 0; p < 8; ++p)
        c.access(p, true); // half entries
    // All 8 half entries fit in 4 ways.
    for (PageNum p = 0; p < 8; ++p)
        EXPECT_TRUE(c.contains(p)) << p;
    EXPECT_EQ(c.stats().get("evictions"), 0u);
}

TEST(MetadataCache, HalfOptDisabledFallsBack)
{
    MetadataCache c(tinyConfig(false));
    for (PageNum p = 0; p < 8; ++p)
        c.access(p, true); // request half, but the opt is off
    EXPECT_EQ(c.stats().get("evictions"), 4u);
}

TEST(MetadataCache, EvictHookFiresWithDirtyFlag)
{
    MetadataCache c(tinyConfig(false));
    std::vector<std::pair<PageNum, bool>> evicted;
    c.setEvictHook([&](PageNum p, bool d) { evicted.emplace_back(p, d); });
    c.access(1, false, /*dirty=*/true);
    for (PageNum p = 2; p <= 5; ++p)
        c.access(p, false);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].first, 1u);
    EXPECT_TRUE(evicted[0].second);
}

TEST(MetadataCache, CleanEvictionReportsClean)
{
    MetadataCache c(tinyConfig(false));
    std::vector<bool> dirty;
    c.setEvictHook([&](PageNum, bool d) { dirty.push_back(d); });
    for (PageNum p = 0; p < 5; ++p)
        c.access(p, false, false);
    ASSERT_EQ(dirty.size(), 1u);
    EXPECT_FALSE(dirty[0]);
}

TEST(MetadataCache, GrowingHalfToFullEvictsIfNeeded)
{
    MetadataCache c(tinyConfig(true));
    for (PageNum p = 0; p < 8; ++p)
        c.access(p, true);
    // Page 0 becomes compressed => needs its full entry.
    c.reshape(0, false);
    EXPECT_TRUE(c.contains(0));
    EXPECT_EQ(c.stats().get("evictions"), 1u);
}

TEST(MetadataCache, InvalidateRemovesSilently)
{
    MetadataCache c(tinyConfig(false));
    bool hook_fired = false;
    c.setEvictHook([&](PageNum, bool) { hook_fired = true; });
    c.access(42, false);
    c.invalidate(42);
    EXPECT_FALSE(c.contains(42));
    EXPECT_FALSE(hook_fired);
}

TEST(MetadataCache, PredictorCounterPerEntry)
{
    MetadataCache c(tinyConfig(false));
    c.access(7, false);
    uint8_t *cnt = c.predictorCounter(7);
    ASSERT_NE(cnt, nullptr);
    EXPECT_EQ(*cnt, 0);
    *cnt = 3;
    EXPECT_EQ(*c.predictorCounter(7), 3);
    EXPECT_EQ(c.predictorCounter(12345), nullptr);
}

TEST(MetadataCache, SetCountMatchesGeometry)
{
    MetadataCacheConfig cfg; // 96 KB, 8-way
    MetadataCache c(cfg);
    EXPECT_EQ(c.numSets(), 96u * 1024 / kMetadataEntryBytes / 8);
}

TEST(MetadataCache, AccessesDistributeAcrossSets)
{
    MetadataCacheConfig cfg;
    cfg.size_bytes = 16 * kMetadataEntryBytes;
    cfg.ways = 2; // 8 sets
    MetadataCache c(cfg);
    // Pages mapping to different sets never evict each other.
    for (PageNum p = 0; p < 16; ++p)
        c.access(p, false);
    EXPECT_EQ(c.stats().get("evictions"), 0u);
}
