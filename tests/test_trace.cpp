/**
 * @file
 * Tests for trace parsing, emission, and replay.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace.h"

using namespace compresso;

TEST(TraceReader, ParsesBasicRecords)
{
    std::istringstream in("R 1000 4\nW 2040 6 delta-int:3\n");
    TraceReader r(in);
    TraceRecord rec;

    ASSERT_TRUE(r.next(rec));
    EXPECT_FALSE(rec.write);
    EXPECT_EQ(rec.addr, 0x1000u);
    EXPECT_DOUBLE_EQ(rec.inst_gap, 4.0);

    ASSERT_TRUE(r.next(rec));
    EXPECT_TRUE(rec.write);
    EXPECT_EQ(rec.addr, 0x2040u);
    EXPECT_EQ(rec.cls, DataClass::kDeltaInt);
    EXPECT_EQ(rec.version, 3u);

    EXPECT_FALSE(r.next(rec));
    EXPECT_EQ(r.parsed(), 2u);
}

TEST(TraceReader, DefaultsApplied)
{
    std::istringstream in("W abc\n");
    TraceReader r(in);
    TraceRecord rec;
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec.addr, 0xabcu);
    EXPECT_DOUBLE_EQ(rec.inst_gap, 8.0);
    EXPECT_EQ(rec.cls, DataClass::kRandom);
}

TEST(TraceReader, SkipsCommentsAndGarbage)
{
    std::istringstream in("# header\nX nope\nR zz\nR 40\n");
    TraceReader r(in);
    TraceRecord rec;
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec.addr, 0x40u);
    EXPECT_FALSE(r.next(rec));
    EXPECT_EQ(r.skipped(), 2u);
}

TEST(TraceRoundTrip, WriteThenParse)
{
    TraceRecord rec;
    rec.addr = 0xdead40;
    rec.write = true;
    rec.inst_gap = 12.5;
    rec.cls = DataClass::kFloat;
    rec.version = 7;

    std::ostringstream os;
    writeTraceRecord(os, rec);
    std::istringstream in(os.str());
    TraceReader r(in);
    TraceRecord back;
    ASSERT_TRUE(r.next(back));
    EXPECT_EQ(back.addr, rec.addr);
    EXPECT_EQ(back.write, rec.write);
    EXPECT_DOUBLE_EQ(back.inst_gap, rec.inst_gap);
    EXPECT_EQ(back.cls, rec.cls);
    EXPECT_EQ(back.version, rec.version);
}

namespace {

std::string
syntheticTrace(unsigned pages, unsigned reads_per_page)
{
    std::ostringstream os;
    for (unsigned p = 0; p < pages; ++p)
        for (unsigned l = 0; l < kLinesPerPage; ++l) {
            TraceRecord rec;
            rec.addr = Addr(p) * kPageBytes + l * kLineBytes;
            rec.write = true;
            rec.cls = DataClass::kDeltaInt;
            writeTraceRecord(os, rec);
        }
    Rng rng(9);
    for (unsigned i = 0; i < pages * reads_per_page; ++i) {
        TraceRecord rec;
        rec.addr = Addr(rng.below(pages)) * kPageBytes +
                   rng.below(kLinesPerPage) * kLineBytes;
        writeTraceRecord(os, rec);
    }
    return os.str();
}

} // namespace

TEST(TraceReplay, CompressesCompressibleTrace)
{
    std::istringstream in(syntheticTrace(32, 64));
    TraceReader reader(in);
    TraceReplayReport rep = replayTrace(McKind::kCompresso, reader);
    EXPECT_GT(rep.references, 32u * 64);
    EXPECT_GT(rep.comp_ratio, 2.0);
    EXPECT_GT(rep.ipc, 0.0);
}

TEST(TraceReplay, BackendsSeeSameReferences)
{
    std::string trace = syntheticTrace(16, 32);
    std::istringstream a(trace), b(trace);
    TraceReader ra(a), rb(b);
    TraceReplayReport ua = replayTrace(McKind::kUncompressed, ra);
    TraceReplayReport ub = replayTrace(McKind::kCompresso, rb);
    EXPECT_EQ(ua.references, ub.references);
    EXPECT_DOUBLE_EQ(ua.comp_ratio, 1.0);
}

TEST(TraceReplay, MaxRefsBounds)
{
    std::istringstream in(syntheticTrace(8, 16));
    TraceReader reader(in);
    TraceReplayReport rep =
        replayTrace(McKind::kCompresso, reader, 100);
    EXPECT_EQ(rep.references, 100u);
}
