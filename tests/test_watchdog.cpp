/**
 * @file
 * Watchdog unit tests: per-class stall budgets, deterministic denial
 * windows, and phase digests (DESIGN.md §14).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "pressure/watchdog.h"

using namespace compresso;

TEST(Watchdog, WithinBudgetNeverBreaches)
{
    Watchdog wd;
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(wd.onOpCost(PressureOp::kRepack, 256));
    EXPECT_EQ(wd.totalBreaches(), 0u);
    EXPECT_FALSE(wd.denies(PressureOp::kRepack));
}

TEST(Watchdog, BreachOpensDenialWindowForThatClassOnly)
{
    WatchdogConfig cfg;
    cfg.op_budget = {100, 100, 100, 100};
    cfg.denial_window = 3;
    Watchdog wd(cfg);

    EXPECT_TRUE(wd.onOpCost(PressureOp::kRelocation, 101));
    EXPECT_EQ(wd.breaches(PressureOp::kRelocation), 1u);
    // Other classes are unaffected.
    EXPECT_FALSE(wd.denies(PressureOp::kRepack));
    EXPECT_FALSE(wd.denies(PressureOp::kMetaRebuild));
    // Exactly denial_window admissions of the breaching class are
    // refused, then the window closes.
    EXPECT_TRUE(wd.denies(PressureOp::kRelocation));
    EXPECT_TRUE(wd.denies(PressureOp::kRelocation));
    EXPECT_TRUE(wd.denies(PressureOp::kRelocation));
    EXPECT_FALSE(wd.denies(PressureOp::kRelocation));
}

TEST(Watchdog, RepeatBreachRearmsWindow)
{
    WatchdogConfig cfg;
    cfg.op_budget = {10, 10, 10, 10};
    cfg.denial_window = 2;
    Watchdog wd(cfg);
    wd.onOpCost(PressureOp::kRepack, 50);
    EXPECT_TRUE(wd.denies(PressureOp::kRepack));
    wd.onOpCost(PressureOp::kRepack, 50); // re-arms while open
    EXPECT_TRUE(wd.denies(PressureOp::kRepack));
    EXPECT_TRUE(wd.denies(PressureOp::kRepack));
    EXPECT_FALSE(wd.denies(PressureOp::kRepack));
    EXPECT_EQ(wd.breaches(PressureOp::kRepack), 2u);
}

TEST(Watchdog, ZeroBudgetDisablesClass)
{
    WatchdogConfig cfg;
    cfg.op_budget = {0, 0, 0, 0};
    Watchdog wd(cfg);
    EXPECT_FALSE(wd.onOpCost(PressureOp::kInflation, ~uint64_t(0)));
    EXPECT_EQ(wd.totalBreaches(), 0u);
}

TEST(Watchdog, DigestTracksDistribution)
{
    Watchdog wd;
    for (uint64_t v : {4u, 8u, 8u, 16u})
        wd.onOpCost(PressureOp::kMetaRebuild, v);
    Watchdog::Digest d = wd.digest(PressureOp::kMetaRebuild);
    EXPECT_EQ(d.count, 4u);
    EXPECT_EQ(d.max, 16u);
    EXPECT_GE(d.p99, d.p50);
    EXPECT_EQ(d.breaches, 0u);
}

TEST(Watchdog, TakePhaseResetsPhaseNotLifetime)
{
    WatchdogConfig cfg;
    cfg.op_budget = {10, 10, 10, 10};
    Watchdog wd(cfg);
    wd.onOpCost(PressureOp::kRepack, 99); // breach
    wd.onOpCost(PressureOp::kRepack, 5);

    auto phase = wd.takePhase();
    EXPECT_EQ(phase[size_t(PressureOp::kRepack)].count, 2u);
    EXPECT_EQ(phase[size_t(PressureOp::kRepack)].breaches, 1u);

    // Phase accumulation reset; lifetime counters keep running.
    auto empty = wd.takePhase();
    EXPECT_EQ(empty[size_t(PressureOp::kRepack)].count, 0u);
    EXPECT_EQ(empty[size_t(PressureOp::kRepack)].breaches, 0u);
    EXPECT_EQ(wd.totalBreaches(), 1u);
}

TEST(Watchdog, DeterministicAcrossInstances)
{
    // Same op-cost sequence -> identical decisions and digests: the
    // watchdog consumes no entropy and no host time.
    WatchdogConfig cfg;
    cfg.op_budget = {64, 64, 64, 64};
    cfg.denial_window = 4;
    Watchdog a(cfg), b(cfg);
    Rng rng(42);
    for (int i = 0; i < 500; ++i) {
        PressureOp op = PressureOp(rng.below(4));
        uint64_t ops = rng.below(128);
        EXPECT_EQ(a.onOpCost(op, ops), b.onOpCost(op, ops));
        if (rng.chance(0.3))
            EXPECT_EQ(a.denies(op), b.denies(op));
    }
    EXPECT_EQ(a.totalBreaches(), b.totalBreaches());
    for (size_t i = 0; i < size_t(PressureOp::kCount); ++i) {
        Watchdog::Digest da = a.digest(PressureOp(i));
        Watchdog::Digest db = b.digest(PressureOp(i));
        EXPECT_EQ(da.count, db.count);
        EXPECT_EQ(da.p50, db.p50);
        EXPECT_EQ(da.p99, db.p99);
        EXPECT_EQ(da.max, db.max);
        EXPECT_EQ(da.breaches, db.breaches);
    }
}
