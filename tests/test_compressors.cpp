/**
 * @file
 * Unit + property tests for the line compressors (BPC, BDI, FPC,
 * C-PACK): exact round-trips on every data class and on adversarial
 * random data, plus the algorithm-specific size expectations the
 * compression-ratio experiments rely on.
 */

#include <gtest/gtest.h>

#include "compress/bdi.h"
#include "compress/bpc.h"
#include "compress/cpack.h"
#include "compress/factory.h"
#include "compress/fpc.h"
#include "compress/lz.h"
#include "workloads/datagen.h"

using namespace compresso;

namespace {

Line
makeLine(std::initializer_list<uint32_t> words)
{
    Line line{};
    size_t i = 0;
    for (uint32_t w : words) {
        setLineWord32(line, i++, w);
        if (i == 16)
            break;
    }
    return line;
}

void
expectRoundTrip(const Compressor &c, const Line &in, const char *what)
{
    BitWriter w;
    size_t bits = c.compress(in, w);
    ASSERT_GT(bits, 0u) << what;
    BitReader r(w.bytes().data(), w.bitSize());
    Line out{};
    ASSERT_TRUE(c.decompress(r, out)) << c.name() << " on " << what;
    EXPECT_EQ(in, out) << c.name() << " on " << what;
}

} // namespace

// ---------------------------------------------------------------------
// Round-trip property tests, parameterized over every algorithm.
// ---------------------------------------------------------------------

class CompressorRoundTrip : public ::testing::TestWithParam<std::string>
{
  protected:
    std::unique_ptr<Compressor> codec_ = makeCompressor(GetParam());
};

TEST_P(CompressorRoundTrip, ZeroLine)
{
    Line line{};
    expectRoundTrip(*codec_, line, "zero line");
}

TEST_P(CompressorRoundTrip, AllOnesLine)
{
    Line line;
    line.fill(0xff);
    expectRoundTrip(*codec_, line, "all-ones line");
}

TEST_P(CompressorRoundTrip, EveryDataClass)
{
    for (size_t c = 0; c < kNumDataClasses; ++c) {
        for (uint64_t seed = 0; seed < 16; ++seed) {
            Line line;
            generateLine(DataClass(c), seed, line);
            expectRoundTrip(*codec_, line,
                            dataClassName(DataClass(c)));
        }
    }
}

TEST_P(CompressorRoundTrip, RandomLines)
{
    Rng rng(0xc0ffee);
    for (int iter = 0; iter < 100; ++iter) {
        Line line;
        for (size_t i = 0; i < 8; ++i)
            setLineWord64(line, i, rng.next());
        expectRoundTrip(*codec_, line, "random");
    }
}

TEST_P(CompressorRoundTrip, SparseRandomBytes)
{
    // Lines with a few random bytes poked into zeros: stresses the
    // single-one / consecutive-ones plane codes in BPC.
    Rng rng(0xbeef);
    for (int iter = 0; iter < 100; ++iter) {
        Line line{};
        unsigned pokes = 1 + unsigned(rng.below(6));
        for (unsigned p = 0; p < pokes; ++p)
            line[rng.below(kLineBytes)] = uint8_t(rng.next());
        expectRoundTrip(*codec_, line, "sparse");
    }
}

TEST_P(CompressorRoundTrip, BackToBackStreams)
{
    // Two lines encoded into one stream decode in order.
    Line a, b;
    generateLine(DataClass::kDeltaInt, 1, a);
    generateLine(DataClass::kPointer, 2, b);
    BitWriter w;
    codec_->compress(a, w);
    codec_->compress(b, w);
    BitReader r(w.bytes().data(), w.bitSize());
    Line out;
    ASSERT_TRUE(codec_->decompress(r, out));
    EXPECT_EQ(a, out);
    ASSERT_TRUE(codec_->decompress(r, out));
    EXPECT_EQ(b, out);
}

TEST_P(CompressorRoundTrip, CompressedBitsMatchesStream)
{
    Line line;
    generateLine(DataClass::kFloat, 99, line);
    BitWriter w;
    size_t bits = codec_->compress(line, w);
    EXPECT_EQ(bits, w.bitSize());
    EXPECT_EQ(codec_->compressedBits(line), bits);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, CompressorRoundTrip,
                         ::testing::Values("bpc", "bpc-xform", "bdi",
                                           "fpc", "cpack", "lz"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &ch : n)
                                 if (ch == '-')
                                     ch = '_';
                             return n;
                         });

// ---------------------------------------------------------------------
// Algorithm-specific expectations
// ---------------------------------------------------------------------

TEST(Bpc, ZeroLineIsTiny)
{
    BpcCompressor bpc;
    Line line{};
    EXPECT_LE(bpc.compressedBytes(line), 2u);
}

TEST(Bpc, SmoothSequenceCompressesHard)
{
    // words = 100, 101, 102, ... : constant delta of 1.
    Line line;
    for (size_t i = 0; i < 16; ++i)
        setLineWord32(line, i, uint32_t(100 + i));
    BpcCompressor bpc;
    EXPECT_LE(bpc.compressedBytes(line), 8u);
}

TEST(Bpc, AdaptiveModeNeverWorseThanTransform)
{
    BpcCompressor adaptive(true);
    Rng rng(5);
    for (int iter = 0; iter < 200; ++iter) {
        Line line;
        DataClass cls = DataClass(rng.below(kNumDataClasses));
        generateLine(cls, rng.next(), line);
        EXPECT_LE(adaptive.compressedBits(line),
                  adaptive.transformedBits(line));
    }
}

TEST(Bpc, AdaptiveModeHelpsSomewhere)
{
    // The Compresso extension must win on some inputs (the paper
    // reports 13% average savings from it).
    BpcCompressor bpc;
    Rng rng(6);
    int wins = 0;
    for (int iter = 0; iter < 300; ++iter) {
        Line line;
        DataClass cls = DataClass(rng.below(kNumDataClasses));
        generateLine(cls, rng.next(), line);
        wins += bpc.directBits(line) < bpc.transformedBits(line);
    }
    EXPECT_GT(wins, 0);
}

TEST(Bpc, IncompressibleStaysBounded)
{
    // Worst case must stay within the 64 B bin + small overhead so the
    // top size bin (stored raw) always applies.
    BpcCompressor bpc;
    Rng rng(8);
    for (int iter = 0; iter < 50; ++iter) {
        Line line;
        for (size_t i = 0; i < 8; ++i)
            setLineWord64(line, i, rng.next());
        EXPECT_LE(bpc.compressedBytes(line), 72u);
    }
}

TEST(Bdi, RepeatedValueIsEightBytesPlusHeader)
{
    Line line;
    for (size_t i = 0; i < 8; ++i)
        setLineWord64(line, i, 0x1234567812345678ULL);
    BdiCompressor bdi;
    EXPECT_LE(bdi.compressedBytes(line), 10u);
}

TEST(Bdi, PointerLineUsesBase8)
{
    Line line;
    generateLine(DataClass::kPointer, 3, line);
    BdiCompressor bdi;
    // b8d4: 8 + 8 + 8*4 = 44ish bytes at most.
    EXPECT_LE(bdi.compressedBytes(line), 46u);
}

TEST(Bdi, RandomIsStoredRaw)
{
    Line line;
    Rng rng(10);
    for (size_t i = 0; i < 8; ++i)
        setLineWord64(line, i, rng.next());
    BdiCompressor bdi;
    size_t bytes = bdi.compressedBytes(line);
    EXPECT_GE(bytes, kLineBytes);
    EXPECT_LE(bytes, kLineBytes + 1);
}

TEST(Fpc, ZeroRunsAggregate)
{
    Line line{};
    FpcCompressor fpc;
    // 16 zero words collapse into two 6-bit run symbols.
    EXPECT_LE(fpc.compressedBytes(line), 2u);
}

TEST(Fpc, SmallIntsUseShortCodes)
{
    Line line;
    for (size_t i = 0; i < 16; ++i)
        setLineWord32(line, i, uint32_t(i % 7));
    FpcCompressor fpc;
    EXPECT_LE(fpc.compressedBytes(line), 16u);
}

TEST(Cpack, RepeatedWordsHitDictionary)
{
    Line line;
    for (size_t i = 0; i < 16; ++i)
        setLineWord32(line, i, 0xdeadbeef);
    CpackCompressor cpack;
    // First word uncompressed (34 b), then 15 full matches (6 b each).
    EXPECT_LE(cpack.compressedBytes(line), 18u);
}

TEST(Cpack, LowByteVariantsPartialMatch)
{
    Line line = makeLine({0xaabbcc00, 0xaabbcc01, 0xaabbcc02, 0xaabbcc03,
                          0xaabbcc04, 0xaabbcc05, 0xaabbcc06, 0xaabbcc07,
                          0xaabbcc08, 0xaabbcc09, 0xaabbcc0a, 0xaabbcc0b,
                          0xaabbcc0c, 0xaabbcc0d, 0xaabbcc0e, 0xaabbcc0f});
    CpackCompressor cpack;
    EXPECT_LT(cpack.compressedBytes(line), 40u);
}

TEST(Lz, RepeatedPatternCompressesHard)
{
    LzCompressor lz;
    Line line;
    for (size_t i = 0; i < kLineBytes; ++i)
        line[i] = uint8_t("abcd"[i % 4]);
    // One literal run + overlapping matches cover the rest.
    EXPECT_LE(lz.compressedBytes(line), 12u);
}

TEST(Lz, HighestRatioOnTextAmongAll)
{
    // Sec. II-A: "LZ results in the highest compression" on
    // dictionary-friendly data.
    Line line;
    generateLine(DataClass::kText, 3, line);
    LzCompressor lz;
    size_t lz_bytes = lz.compressedBytes(line);
    for (const char *other : {"bdi", "fpc", "cpack"}) {
        auto codec = makeCompressor(other);
        EXPECT_LE(lz_bytes, codec->compressedBytes(line) + 8) << other;
    }
}

TEST(Lz, MatchSearchOpsAreExpensive)
{
    // ...and why it is unattractive in a memory controller: the
    // matcher does hundreds of byte comparisons per 64 B line.
    LzCompressor lz;
    Line line;
    generateLine(DataClass::kText, 4, line);
    EXPECT_GT(lz.matchSearchOps(line), 500u);
}

TEST(Factory, KnownNames)
{
    for (const auto &name : compressorNames()) {
        auto c = makeCompressor(name);
        ASSERT_NE(c, nullptr) << name;
        EXPECT_EQ(c->name(), name);
    }
    EXPECT_EQ(makeCompressor("nope"), nullptr);
}

TEST(ZeroLine, Detector)
{
    Line line{};
    EXPECT_TRUE(isZeroLine(line));
    line[63] = 1;
    EXPECT_FALSE(isZeroLine(line));
}
