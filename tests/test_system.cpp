/**
 * @file
 * Integration tests: full system (cores + caches + controller + DRAM)
 * on real workload streams, and the runner's derived metrics.
 */

#include <gtest/gtest.h>

#include "sim/runner.h"

using namespace compresso;

namespace {

RunSpec
quickSpec(McKind kind, const std::string &bench)
{
    RunSpec spec;
    spec.kind = kind;
    spec.workloads = {bench};
    spec.refs_per_core = 30000;
    spec.warmup_refs = 3000;
    return spec;
}

} // namespace

TEST(CoreModel, IndependentMissesOverlap)
{
    CoreModel serial, parallel;
    // Ten misses, 300 cycles each, far apart in instructions.
    for (int i = 0; i < 10; ++i) {
        serial.advanceInsts(1000);
        serial.load(serial.now() + 300);
    }
    serial.drainAll();
    // Ten misses back to back: they overlap in the ROB window.
    for (int i = 0; i < 10; ++i) {
        parallel.advanceInsts(2);
        parallel.load(parallel.now() + 300);
    }
    parallel.drainAll();
    EXPECT_LT(parallel.now(), serial.now());
}

TEST(CoreModel, MlpBoundEnforced)
{
    CoreConfig cfg;
    cfg.max_outstanding = 2;
    CoreModel cm(cfg);
    for (int i = 0; i < 8; ++i)
        cm.load(cm.now() + 1000);
    cm.drainAll();
    // With MLP 2, eight 1000-cycle misses take >= ~4000 cycles.
    EXPECT_GE(cm.now(), 3000u);
}

TEST(CoreModel, StallAddsDirectly)
{
    CoreModel cm;
    Cycle before = cm.now();
    cm.stall(5000);
    EXPECT_EQ(cm.now(), before + 5000);
}

TEST(System, RunsAndRetiresInstructions)
{
    SystemConfig cfg = makeSystemConfig(McKind::kCompresso, 1, RunSpec{});
    System sys(cfg, {"gcc"}, 1);
    sys.populate();
    sys.run(5000);
    EXPECT_GT(sys.cycles(), 0u);
    EXPECT_GT(sys.instsRetired(), 5000u);
    EXPECT_GT(sys.mc().stats().get("fills"), 0u);
}

TEST(System, PopulateEstablishesFootprint)
{
    SystemConfig cfg = makeSystemConfig(McKind::kCompresso, 1, RunSpec{});
    System sys(cfg, {"povray"}, 1);
    sys.populate();
    EXPECT_EQ(sys.mc().ospaBytes(),
              uint64_t(profileByName("povray").pages) * kPageBytes);
    EXPECT_GT(sys.mc().compressionRatio(), 1.0);
}

TEST(System, UncompressedHasNoExtraAccesses)
{
    RunResult r = runSystem(quickSpec(McKind::kUncompressed, "gcc"));
    EXPECT_DOUBLE_EQ(r.extra_total, 0.0);
    EXPECT_DOUBLE_EQ(r.comp_ratio, 1.0);
}

TEST(System, CompressoCompressesGcc)
{
    RunResult r = runSystem(quickSpec(McKind::kCompresso, "gcc"));
    EXPECT_GT(r.comp_ratio, 1.3);
    EXPECT_GT(r.md_hit_rate, 0.5);
    EXPECT_GT(r.perf, 0.0);
}

TEST(System, ExtraAccessBreakdownPopulated)
{
    RunResult r = runSystem(quickSpec(McKind::kCompresso, "astar"));
    EXPECT_GE(r.extra_total, 0.0);
    EXPECT_NEAR(r.extra_total,
                r.extra_split + r.extra_overflow + r.extra_repack +
                    r.extra_metadata,
                1e-9);
}

TEST(System, ZeroHeavyBenchmarkGetsZeroShortcuts)
{
    RunResult r = runSystem(quickSpec(McKind::kCompresso, "leslie3d"));
    EXPECT_GT(r.zero_access_frac, 0.1);
}

TEST(System, LcpRunsGcc)
{
    RunResult r = runSystem(quickSpec(McKind::kLcp, "gcc"));
    EXPECT_GT(r.comp_ratio, 1.0);
    EXPECT_GT(r.perf, 0.0);
}

TEST(System, FourCoreSharedSystem)
{
    RunSpec spec;
    spec.kind = McKind::kCompresso;
    spec.workloads = {"gcc", "milc", "povray", "namd"};
    spec.refs_per_core = 8000;
    spec.warmup_refs = 1000;
    RunResult r = runSystem(spec);
    EXPECT_GT(r.insts, 4u * 8000u);
    EXPECT_GT(r.comp_ratio, 1.0);
}

TEST(System, DeterministicAcrossRuns)
{
    RunResult a = runSystem(quickSpec(McKind::kCompresso, "hmmer"));
    RunResult b = runSystem(quickSpec(McKind::kCompresso, "hmmer"));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.mc_stats.get("fills"), b.mc_stats.get("fills"));
}

TEST(System, CompressoBeatsLegacyBaselineOnOverflows)
{
    // The unoptimized configuration (legacy bins, no predictor/IR
    // expansion/repack/md-opt) must show more extra accesses than the
    // full Compresso on a churny workload.
    RunSpec base = quickSpec(McKind::kCompresso, "astar");
    base.compresso.alignment_friendly = false;
    base.compresso.overflow_prediction = false;
    base.compresso.dynamic_ir_expansion = false;
    base.compresso.repack_on_evict = false;
    base.compresso.mdcache.half_entry_opt = false;
    RunResult unopt = runSystem(base);

    RunResult full = runSystem(quickSpec(McKind::kCompresso, "astar"));
    EXPECT_LT(full.extra_total, unopt.extra_total);
}
