/**
 * @file
 * Tests for the annotated sync wrappers (common/sync.h) that every
 * locking component rides on (DESIGN.md §13). The annotations are a
 * compile-time proof under Clang; these tests pin the runtime
 * behavior — mutual exclusion, try_lock semantics, condvar wakeup —
 * so the wrappers stay correct on every compiler, and pin it under
 * the tsan preset where the wrappers must also be race-clean.
 */

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/sync.h"

using namespace compresso;
using namespace std::chrono_literals;

TEST(Sync, MutexProvidesMutualExclusion)
{
    Mutex mu;
    int counter = 0; // deliberately non-atomic: the mutex is the proof
    constexpr int kThreads = 8;
    constexpr int kIters = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                MutexLock lk(mu);
                ++counter;
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(counter, kThreads * kIters);
}

TEST(Sync, TryLockFailsWhileHeldAndSucceedsAfter)
{
    Mutex mu;
    mu.lock();
    std::atomic<bool> failed_while_held{false};
    std::thread probe([&] { failed_while_held.store(!mu.try_lock()); });
    probe.join();
    EXPECT_TRUE(failed_while_held.load());
    mu.unlock();
    ASSERT_TRUE(mu.try_lock());
    mu.unlock();
}

TEST(Sync, CondVarWakesWaiterOnNotify)
{
    Mutex mu;
    CondVar cv;
    bool ready = false;
    std::atomic<bool> woke{false};

    std::thread waiter([&] {
        MutexLock lk(mu);
        while (!ready)
            cv.wait(mu);
        woke.store(true);
    });

    {
        MutexLock lk(mu);
        ready = true;
    }
    cv.notify_one();
    waiter.join();
    EXPECT_TRUE(woke.load());
}

TEST(Sync, CondVarWaitForTimesOutWithoutNotify)
{
    Mutex mu;
    CondVar cv;
    MutexLock lk(mu);
    auto status = cv.wait_for(mu, 10ms);
    EXPECT_EQ(status, std::cv_status::timeout);
}

TEST(Sync, CondVarNotifyAllWakesEveryWaiter)
{
    Mutex mu;
    CondVar cv;
    bool go = false;
    std::atomic<int> awake{0};
    constexpr int kWaiters = 4;

    std::vector<std::thread> waiters;
    waiters.reserve(kWaiters);
    for (int i = 0; i < kWaiters; ++i) {
        waiters.emplace_back([&] {
            MutexLock lk(mu);
            while (!go)
                cv.wait(mu);
            ++awake;
        });
    }
    {
        MutexLock lk(mu);
        go = true;
    }
    cv.notify_all();
    for (auto &th : waiters)
        th.join();
    EXPECT_EQ(awake.load(), kWaiters);
}
