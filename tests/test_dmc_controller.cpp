/**
 * @file
 * Tests for the DMC baseline (dual hot/cold compression with 1 KB
 * cold granularity and migration costs).
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "core/dmc_controller.h"
#include "workloads/datagen.h"

using namespace compresso;

namespace {

DmcConfig
baseConfig()
{
    DmcConfig cfg;
    cfg.installed_bytes = uint64_t(64) << 20;
    cfg.mdcache.size_bytes = 16 * 1024;
    cfg.epoch_writebacks = 512;
    return cfg;
}

Line
classLine(DataClass c, uint64_t seed)
{
    Line l;
    generateLine(c, seed, l);
    return l;
}

Addr
addrOf(PageNum page, unsigned line)
{
    return Addr(page) * kPageBytes + Addr(line) * kLineBytes;
}

void
writeLine(DmcController &mc, Addr a, const Line &d)
{
    McTrace tr;
    mc.writebackLine(a, d, tr);
}

Line
readLine(DmcController &mc, Addr a, McTrace *out = nullptr)
{
    Line d;
    McTrace tr;
    mc.fillLine(a, d, tr);
    if (out)
        *out = tr;
    return d;
}

} // namespace

TEST(Dmc, RoundTripEveryDataClass)
{
    DmcController mc(baseConfig());
    for (size_t c = 0; c < kNumDataClasses; ++c) {
        Line in = classLine(DataClass(c), 7 + c);
        writeLine(mc, addrOf(1, unsigned(c)), in);
        EXPECT_EQ(readLine(mc, addrOf(1, unsigned(c))), in)
            << dataClassName(DataClass(c));
    }
}

TEST(Dmc, ColdDemotionAfterIdleEpoch)
{
    DmcConfig cfg = baseConfig();
    cfg.epoch_writebacks = 128;
    DmcController mc(cfg);

    // Page 5 written once, then left idle while other pages churn.
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        writeLine(mc, addrOf(5, l), classLine(DataClass::kPointer, l));
    Rng rng(3);
    for (int i = 0; i < 400; ++i)
        writeLine(mc, addrOf(100 + rng.below(8),
                             unsigned(rng.below(kLinesPerPage))),
                  classLine(DataClass::kSmallInt, rng.next()));

    EXPECT_TRUE(mc.isCold(5));
    EXPECT_GE(mc.stats().get("demotions"), 1u);
    // Data survives the representation change.
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        ASSERT_EQ(readLine(mc, addrOf(5, l)),
                  classLine(DataClass::kPointer, l));
}

TEST(Dmc, ColdReadsFetchWholeBlock)
{
    DmcConfig cfg = baseConfig();
    cfg.epoch_writebacks = 64;
    DmcController mc(cfg);
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        writeLine(mc, addrOf(6, l), classLine(DataClass::kPointer, l));
    Rng rng(4);
    for (int i = 0; i < 200; ++i)
        writeLine(mc, addrOf(200 + rng.below(4), 0),
                  classLine(DataClass::kSmallInt, rng.next()));
    ASSERT_TRUE(mc.isCold(6));

    McTrace tr;
    readLine(mc, addrOf(6, 3), &tr);
    // One line costs several device reads (the 1 KB block) and the
    // long LZ latency — DMC's read penalty for cold data.
    unsigned reads = 0;
    for (const auto &op : tr.ops)
        reads += op.critical && !op.write;
    EXPECT_GE(reads, 2u);
    EXPECT_GE(tr.fixed_latency, 64u);
    EXPECT_GE(mc.stats().get("cold_block_reads"), 1u);
}

TEST(Dmc, WritePromotesColdPage)
{
    DmcConfig cfg = baseConfig();
    cfg.epoch_writebacks = 64;
    DmcController mc(cfg);
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        writeLine(mc, addrOf(7, l), classLine(DataClass::kPointer, l));
    Rng rng(5);
    for (int i = 0; i < 200; ++i)
        writeLine(mc, addrOf(300 + rng.below(4), 0),
                  classLine(DataClass::kSmallInt, rng.next()));
    ASSERT_TRUE(mc.isCold(7));

    Line fresh = classLine(DataClass::kFloat, 99);
    writeLine(mc, addrOf(7, 9), fresh);
    EXPECT_FALSE(mc.isCold(7));
    EXPECT_GE(mc.stats().get("promotions"), 1u);
    EXPECT_EQ(readLine(mc, addrOf(7, 9)), fresh);
    EXPECT_EQ(readLine(mc, addrOf(7, 10)),
              classLine(DataClass::kPointer, 10));
}

TEST(Dmc, MigrationCostsAreCounted)
{
    DmcConfig cfg = baseConfig();
    cfg.epoch_writebacks = 64;
    DmcController mc(cfg);
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        writeLine(mc, addrOf(8, l), classLine(DataClass::kPointer, l));
    Rng rng(6);
    for (int i = 0; i < 200; ++i)
        writeLine(mc, addrOf(400 + rng.below(4), 0),
                  classLine(DataClass::kSmallInt, rng.next()));
    writeLine(mc, addrOf(8, 0), classLine(DataClass::kFloat, 1));
    // The paper's critique: granularity changes move a lot of data.
    EXPECT_GT(mc.stats().get("migration_ops"), 20u);
}

TEST(Dmc, ChurnIntegrityAcrossMigrations)
{
    DmcConfig cfg = baseConfig();
    cfg.epoch_writebacks = 256; // frequent demotion cycles
    DmcController mc(cfg);
    Rng rng(41);
    std::unordered_map<Addr, Line> image;
    for (int iter = 0; iter < 4000; ++iter) {
        Addr a = addrOf(10 + rng.below(6),
                        unsigned(rng.below(kLinesPerPage)));
        if (rng.chance(0.5)) {
            Line d = classLine(DataClass(rng.below(kNumDataClasses)),
                               rng.next());
            writeLine(mc, a, d);
            image[a] = d;
        } else {
            Line expect{};
            auto it = image.find(a);
            if (it != image.end())
                expect = it->second;
            ASSERT_EQ(readLine(mc, a), expect);
        }
    }
}

TEST(Dmc, ColdRetainsRatioOnPointerData)
{
    // The cold representation must not squander compression on data
    // where LZ and BDI are comparable (pointer-dense heaps).
    DmcConfig cfg = baseConfig();
    cfg.epoch_writebacks = 128;
    DmcController mc(cfg);
    for (PageNum p = 0; p < 4; ++p)
        for (unsigned l = 0; l < kLinesPerPage; ++l)
            writeLine(mc, addrOf(p, l),
                      classLine(DataClass::kPointer, p * 64 + l));
    double hot_ratio = mc.compressionRatio();
    Rng rng(8);
    for (int i = 0; i < 600; ++i)
        writeLine(mc, addrOf(500 + rng.below(4), 0),
                  classLine(DataClass::kSmallInt, rng.next()));
    for (PageNum p = 0; p < 4; ++p)
        ASSERT_TRUE(mc.isCold(p)) << p;
    // Ratio accounting includes the churn pages; compare page alloc
    // indirectly via machine bytes going down after demotion.
    EXPECT_GT(mc.compressionRatio(), hot_ratio * 0.9);
}
