/**
 * @file
 * Cross-controller parity: the uncompressed, LCP and Compresso back
 * ends must be functionally indistinguishable — identical write/read
 * semantics on identical access sequences — no matter how differently
 * they store the data. Parameterized over the three controllers.
 */

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "core/compresso_controller.h"
#include "core/lcp_controller.h"
#include "core/rmc_controller.h"
#include "core/uncompressed_controller.h"
#include "workloads/datagen.h"

using namespace compresso;

namespace {

std::unique_ptr<MemoryController>
makeController(const std::string &kind)
{
    if (kind == "uncompressed")
        return std::make_unique<UncompressedController>();
    if (kind == "lcp") {
        LcpConfig cfg;
        cfg.installed_bytes = uint64_t(64) << 20;
        return std::make_unique<LcpController>(cfg);
    }
    if (kind == "rmc") {
        RmcConfig cfg;
        cfg.installed_bytes = uint64_t(64) << 20;
        return std::make_unique<RmcController>(cfg);
    }
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(64) << 20;
    cfg.mdcache.size_bytes = 8 * 1024; // stress evictions/repacks
    return std::make_unique<CompressoController>(cfg);
}

} // namespace

class ControllerParity : public ::testing::TestWithParam<std::string>
{
  protected:
    std::unique_ptr<MemoryController> mc_ = makeController(GetParam());

    void
    write(Addr a, const Line &d)
    {
        McTrace tr;
        mc_->writebackLine(a, d, tr);
    }

    Line
    read(Addr a)
    {
        Line d;
        McTrace tr;
        mc_->fillLine(a, d, tr);
        return d;
    }
};

TEST_P(ControllerParity, FreshMemoryReadsZero)
{
    EXPECT_TRUE(isZeroLine(read(0)));
    EXPECT_TRUE(isZeroLine(read(123 * kPageBytes + 7 * kLineBytes)));
}

TEST_P(ControllerParity, LastWriteWins)
{
    Line a, b;
    generateLine(DataClass::kFloat, 1, a);
    generateLine(DataClass::kRandom, 2, b);
    write(kPageBytes, a);
    write(kPageBytes, b);
    EXPECT_EQ(read(kPageBytes), b);
}

TEST_P(ControllerParity, NeighborsUnaffected)
{
    Line d;
    generateLine(DataClass::kText, 5, d);
    write(2 * kPageBytes + 10 * kLineBytes, d);
    EXPECT_TRUE(isZeroLine(read(2 * kPageBytes + 9 * kLineBytes)));
    EXPECT_TRUE(isZeroLine(read(2 * kPageBytes + 11 * kLineBytes)));
}

TEST_P(ControllerParity, RandomizedSequenceMatchesReference)
{
    Rng rng(2024);
    std::unordered_map<Addr, Line> reference;
    for (int iter = 0; iter < 6000; ++iter) {
        Addr a = Addr(rng.below(24)) * kPageBytes +
                 rng.below(kLinesPerPage) * kLineBytes;
        if (rng.chance(0.55)) {
            Line d;
            generateLine(DataClass(rng.below(kNumDataClasses)),
                         rng.next(), d);
            write(a, d);
            reference[a] = d;
        } else {
            Line expect{};
            auto it = reference.find(a);
            if (it != reference.end())
                expect = it->second;
            ASSERT_EQ(read(a), expect) << GetParam() << " @ " << a;
        }
    }
}

TEST_P(ControllerParity, ZeroOverwriteReadsZero)
{
    Line d;
    generateLine(DataClass::kRandom, 9, d);
    write(3 * kPageBytes, d);
    write(3 * kPageBytes, Line{});
    EXPECT_TRUE(isZeroLine(read(3 * kPageBytes)));
}

TEST_P(ControllerParity, FootprintAccounting)
{
    Line d;
    generateLine(DataClass::kSmallInt, 4, d);
    write(11 * kPageBytes, d);
    write(12 * kPageBytes, d);
    EXPECT_EQ(mc_->ospaBytes(), 2 * kPageBytes);
    EXPECT_GE(mc_->compressionRatio(), 1.0);
}

TEST_P(ControllerParity, CompressionRatioOrdering)
{
    // Incompressible data must never report a ratio above ~1 + slack.
    Rng rng(7);
    Line d;
    for (unsigned l = 0; l < kLinesPerPage; ++l) {
        generateLine(DataClass::kRandom, rng.next(), d);
        write(20 * kPageBytes + l * kLineBytes, d);
    }
    EXPECT_LE(mc_->compressionRatio(), 1.15);
}

TEST_P(ControllerParity, TracesAreWellFormed)
{
    Line d;
    generateLine(DataClass::kDeltaInt, 3, d);
    McTrace wt;
    mc_->writebackLine(30 * kPageBytes, d, wt);
    // Writebacks never put reads on the critical path.
    for (const auto &op : wt.ops) {
        if (op.critical)
            EXPECT_FALSE(op.write == false && false); // placeholder
    }
    McTrace rt;
    Line out;
    mc_->fillLine(30 * kPageBytes, out, rt);
    // Fill data ops on the critical path are reads.
    for (const auto &op : rt.ops) {
        if (op.critical)
            EXPECT_FALSE(op.write) << GetParam();
    }
    EXPECT_EQ(out, d);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ControllerParity,
                         ::testing::Values("uncompressed", "lcp", "rmc",
                                           "compresso"),
                         [](const auto &info) { return info.param; });
