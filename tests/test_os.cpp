/**
 * @file
 * Tests for the miniature OS (LRU paging, swap) and the balloon driver
 * flow (Sec. V-B).
 */

#include <gtest/gtest.h>

#include "core/compresso_controller.h"
#include "os/balloon.h"
#include "os/page_allocator.h"
#include "os/sim_os.h"
#include "workloads/datagen.h"

using namespace compresso;

TEST(PageAllocator, AllocFreeCycle)
{
    PageAllocator a(4);
    PageNum p0 = a.allocate();
    PageNum p1 = a.allocate();
    EXPECT_NE(p0, kNoPage);
    EXPECT_NE(p1, p0);
    EXPECT_EQ(a.usedFrames(), 2u);
    a.release(p0);
    EXPECT_EQ(a.freeFrames(), 3u);
    EXPECT_EQ(a.allocate(), p0);
}

TEST(PageAllocator, Exhaustion)
{
    PageAllocator a(2);
    a.allocate();
    a.allocate();
    EXPECT_EQ(a.allocate(), kNoPage);
}

TEST(SimOs, FirstTouchFaults)
{
    SimOs os(4);
    EXPECT_TRUE(os.touch(1));
    EXPECT_FALSE(os.touch(1));
    EXPECT_EQ(os.faults(), 1u);
}

TEST(SimOs, LruEvictionUnderPressure)
{
    SimOs os(2);
    os.touch(1);
    os.touch(2);
    os.touch(1);    // 1 is MRU
    os.touch(3);    // evicts 2
    EXPECT_FALSE(os.touch(1)); // still resident
    EXPECT_TRUE(os.touch(2));  // was evicted
}

TEST(SimOs, DirtyEvictionsPageOut)
{
    SimOs os(1);
    os.touch(1, true);
    os.touch(2, false); // evicts dirty 1
    EXPECT_EQ(os.swap().pageOuts(), 1u);
}

TEST(SimOs, CleanEvictionsDoNotPageOut)
{
    SimOs os(1);
    os.touch(1, false);
    os.touch(2, false);
    EXPECT_EQ(os.swap().pageOuts(), 0u);
}

TEST(SimOs, ShrinkingBudgetReclaims)
{
    SimOs os(8);
    for (PageNum p = 0; p < 8; ++p)
        os.touch(p);
    os.setBudget(3);
    EXPECT_LE(os.residentPages(), 3u);
}

TEST(SimOs, ReclaimReturnsColdPages)
{
    SimOs os(8);
    for (PageNum p = 0; p < 6; ++p)
        os.touch(p);
    os.touch(0); // 0 is hot now
    auto freed = os.reclaim(2);
    ASSERT_EQ(freed.size(), 2u);
    // Coldest pages (1, 2) go first; 0 must survive.
    EXPECT_EQ(freed[0], 1u);
    EXPECT_EQ(freed[1], 2u);
}

TEST(SwapDevice, AccumulatesLatency)
{
    SwapDevice swap(50.0, 25.0);
    swap.pageIn();
    swap.pageIn();
    swap.pageOut();
    EXPECT_DOUBLE_EQ(swap.busyMicros(), 125.0);
}

TEST(Balloon, InflateFreesControllerPages)
{
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(16) << 20;
    CompressoController mc(cfg);

    // Populate a few pages with incompressible data.
    Line rnd;
    for (PageNum p = 0; p < 6; ++p) {
        for (unsigned l = 0; l < kLinesPerPage; ++l) {
            generateLine(DataClass::kRandom, p * 100 + l, rnd);
            McTrace tr;
            mc.writebackLine(Addr(p) * kPageBytes + l * kLineBytes, rnd,
                             tr);
        }
    }
    uint64_t before = mc.mpaDataBytes();

    SimOs os(16);
    for (PageNum p = 0; p < 6; ++p)
        os.touch(p);

    BalloonDriver balloon(os, mc);
    uint64_t reclaimed = balloon.inflate(2);
    EXPECT_EQ(reclaimed, 2u);
    EXPECT_EQ(balloon.heldPages(), 2u);
    EXPECT_LT(mc.mpaDataBytes(), before);

    balloon.deflate(1);
    EXPECT_EQ(balloon.heldPages(), 1u);
}

TEST(Balloon, BalanceTargetsReserve)
{
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(16) << 20;
    CompressoController mc(cfg);
    SimOs os(32);
    Line rnd;
    for (PageNum p = 0; p < 8; ++p) {
        os.touch(p);
        for (unsigned l = 0; l < kLinesPerPage; ++l) {
            generateLine(DataClass::kRandom, p * 7 + l, rnd);
            McTrace tr;
            mc.writebackLine(Addr(p) * kPageBytes + l * kLineBytes, rnd,
                             tr);
        }
    }
    BalloonDriver balloon(os, mc);
    // Plenty free: no action.
    EXPECT_EQ(balloon.balance(1000, 100), 0u);
    // Deficit: inflates.
    EXPECT_GT(balloon.balance(10, 100), 0u);
}
