/**
 * @file
 * Tests for the miniature OS (LRU paging, swap) and the balloon driver
 * flow (Sec. V-B).
 */

#include <gtest/gtest.h>

#include "core/compresso_controller.h"
#include "os/balloon.h"
#include "os/page_allocator.h"
#include "os/sim_os.h"
#include "workloads/datagen.h"

using namespace compresso;

TEST(PageAllocator, AllocFreeCycle)
{
    PageAllocator a(4);
    PageNum p0 = a.allocate();
    PageNum p1 = a.allocate();
    EXPECT_NE(p0, kNoPage);
    EXPECT_NE(p1, p0);
    EXPECT_EQ(a.usedFrames(), 2u);
    a.release(p0);
    EXPECT_EQ(a.freeFrames(), 3u);
    EXPECT_EQ(a.allocate(), p0);
}

TEST(PageAllocator, Exhaustion)
{
    PageAllocator a(2);
    a.allocate();
    a.allocate();
    EXPECT_EQ(a.allocate(), kNoPage);
}

TEST(SimOs, FirstTouchFaults)
{
    SimOs os(4);
    EXPECT_TRUE(os.touch(1));
    EXPECT_FALSE(os.touch(1));
    EXPECT_EQ(os.faults(), 1u);
}

TEST(SimOs, LruEvictionUnderPressure)
{
    SimOs os(2);
    os.touch(1);
    os.touch(2);
    os.touch(1);    // 1 is MRU
    os.touch(3);    // evicts 2
    EXPECT_FALSE(os.touch(1)); // still resident
    EXPECT_TRUE(os.touch(2));  // was evicted
}

TEST(SimOs, DirtyEvictionsPageOut)
{
    SimOs os(1);
    os.touch(1, true);
    os.touch(2, false); // evicts dirty 1
    EXPECT_EQ(os.swap().pageOuts(), 1u);
}

TEST(SimOs, CleanEvictionsDoNotPageOut)
{
    SimOs os(1);
    os.touch(1, false);
    os.touch(2, false);
    EXPECT_EQ(os.swap().pageOuts(), 0u);
}

TEST(SimOs, ShrinkingBudgetReclaims)
{
    SimOs os(8);
    for (PageNum p = 0; p < 8; ++p)
        os.touch(p);
    os.setBudget(3);
    EXPECT_LE(os.residentPages(), 3u);
}

TEST(SimOs, ReclaimReturnsColdPages)
{
    SimOs os(8);
    for (PageNum p = 0; p < 6; ++p)
        os.touch(p);
    os.touch(0); // 0 is hot now
    auto freed = os.reclaim(2);
    ASSERT_EQ(freed.size(), 2u);
    // Coldest pages (1, 2) go first; 0 must survive.
    EXPECT_EQ(freed[0], 1u);
    EXPECT_EQ(freed[1], 2u);
}

TEST(SwapDevice, AccumulatesLatency)
{
    SwapDevice swap(50.0, 25.0);
    swap.pageIn();
    swap.pageIn();
    swap.pageOut();
    EXPECT_DOUBLE_EQ(swap.busyMicros(), 125.0);
}

TEST(SwapDevice, CapacityExhaustionIsTyped)
{
    SwapDevice swap(50.0, 25.0);
    swap.setCapacity(2);
    EXPECT_EQ(swap.pageOut(), SwapStatus::kOk);
    EXPECT_EQ(swap.pageOut(), SwapStatus::kOk);
    EXPECT_TRUE(swap.full());
    double busy = swap.busyMicros();
    // The rejection is typed, counted, and free: nothing was written.
    EXPECT_EQ(swap.pageOut(), SwapStatus::kFull);
    EXPECT_EQ(swap.swapFullRejections(), 1u);
    EXPECT_EQ(swap.storedPages(), 2u);
    EXPECT_DOUBLE_EQ(swap.busyMicros(), busy);
    // Releasing a slot makes room again.
    swap.releaseSlot();
    EXPECT_FALSE(swap.full());
    EXPECT_EQ(swap.pageOut(), SwapStatus::kOk);
}

TEST(SwapDevice, UnlimitedByDefault)
{
    SwapDevice swap;
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(swap.pageOut(), SwapStatus::kOk);
    EXPECT_EQ(swap.swapFullRejections(), 0u);
}

TEST(SimOs, SwapExhaustionEscalatesNotSilent)
{
    // Budget 2, swap capacity 1, every page dirty: once the swap is
    // full and all cold candidates are dirty, eviction must fail
    // loudly — budget_overrun counted, callback invoked, resident set
    // over budget — never silently dropping a dirty page.
    SimOs os(2);
    os.swap().setCapacity(1);
    unsigned escalations = 0;
    os.setOverrunCallback([&escalations] { ++escalations; });

    os.touch(1, true);
    os.touch(2, true);
    os.touch(3, true); // evicts one dirty page into the last slot
    EXPECT_EQ(os.swap().storedPages(), 1u);
    EXPECT_EQ(os.budgetOverruns(), 0u);

    os.touch(4, true); // swap full, all candidates dirty: overrun
    EXPECT_GE(os.budgetOverruns(), 1u);
    EXPECT_GE(escalations, 1u);
    EXPECT_GT(os.residentPages(), os.budget());
    EXPECT_GE(os.swap().swapFullRejections(), 1u);
}

TEST(SimOs, SwapFullEvictionPrefersCleanVictims)
{
    SimOs os(3);
    os.touch(1, true);  // coldest, dirty
    os.touch(2, false); // clean
    os.touch(3, true);
    // Now seal the swap: evicting dirty 1 is impossible, but clean 2
    // can be dropped without a page-out.
    SwapDevice &swap = os.swap();
    swap.setCapacity(1);
    // Fill the only slot so the device is full.
    EXPECT_EQ(swap.pageOut(), SwapStatus::kOk);
    os.touch(4, true); // must evict clean 2, not overrun
    EXPECT_EQ(os.budgetOverruns(), 0u);
    EXPECT_FALSE(os.isResident(2));
    EXPECT_TRUE(os.isResident(1));
}

TEST(SimOs, PageInReleasesSwapSlot)
{
    SimOs os(1);
    os.swap().setCapacity(1);
    os.touch(1, true);
    os.touch(2, false); // pages dirty 1 out: slot used
    EXPECT_EQ(os.swap().storedPages(), 1u);
    os.touch(1, false); // faults 1 back in: slot released
    EXPECT_EQ(os.swap().storedPages(), 0u);
    // Every fault charges a device read (cold faults included), so
    // all three touches counted; only the slot accounting is special.
    EXPECT_EQ(os.swap().pageIns(), 3u);
}

TEST(SimOs, ReclaimSpecificTargetsExactPage)
{
    SimOs os(8);
    for (PageNum p = 0; p < 6; ++p)
        os.touch(p);
    EXPECT_TRUE(os.reclaimSpecific(3));
    EXPECT_FALSE(os.isResident(3));
    EXPECT_EQ(os.residentPages(), 5u);
    // Non-resident pages are a clean miss, not an error.
    EXPECT_FALSE(os.reclaimSpecific(3));
    EXPECT_FALSE(os.reclaimSpecific(99));
}

TEST(SimOs, ColdPagesListsLruOrderWithoutReclaiming)
{
    SimOs os(8);
    for (PageNum p = 0; p < 5; ++p)
        os.touch(p);
    os.touch(0); // heat up 0
    auto cold = os.coldPages(3);
    ASSERT_EQ(cold.size(), 3u);
    EXPECT_EQ(cold[0], 1u); // coldest first
    EXPECT_EQ(cold[1], 2u);
    EXPECT_EQ(cold[2], 3u);
    EXPECT_EQ(os.residentPages(), 5u); // nothing reclaimed
    // Asking for more than resident clamps.
    EXPECT_EQ(os.coldPages(100).size(), 5u);
}

TEST(Balloon, InflateFreesControllerPages)
{
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(16) << 20;
    CompressoController mc(cfg);

    // Populate a few pages with incompressible data.
    Line rnd;
    for (PageNum p = 0; p < 6; ++p) {
        for (unsigned l = 0; l < kLinesPerPage; ++l) {
            generateLine(DataClass::kRandom, p * 100 + l, rnd);
            McTrace tr;
            mc.writebackLine(Addr(p) * kPageBytes + l * kLineBytes, rnd,
                             tr);
        }
    }
    uint64_t before = mc.mpaDataBytes();

    SimOs os(16);
    for (PageNum p = 0; p < 6; ++p)
        os.touch(p);

    BalloonDriver balloon(os, mc);
    uint64_t reclaimed = balloon.inflate(2);
    EXPECT_EQ(reclaimed, 2u);
    EXPECT_EQ(balloon.heldPages(), 2u);
    EXPECT_LT(mc.mpaDataBytes(), before);

    balloon.deflate(1);
    EXPECT_EQ(balloon.heldPages(), 1u);
}

TEST(Balloon, BalanceTargetsReserve)
{
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(16) << 20;
    CompressoController mc(cfg);
    SimOs os(32);
    Line rnd;
    for (PageNum p = 0; p < 8; ++p) {
        os.touch(p);
        for (unsigned l = 0; l < kLinesPerPage; ++l) {
            generateLine(DataClass::kRandom, p * 7 + l, rnd);
            McTrace tr;
            mc.writebackLine(Addr(p) * kPageBytes + l * kLineBytes, rnd,
                             tr);
        }
    }
    BalloonDriver balloon(os, mc);
    // Plenty free: no action.
    EXPECT_EQ(balloon.balance(1000, 100), 0u);
    // Deficit: inflates.
    EXPECT_GT(balloon.balance(10, 100), 0u);
}

namespace {

void
fillPage(MemoryController &mc, PageNum p, DataClass cls, uint64_t seed)
{
    Line data;
    for (unsigned l = 0; l < kLinesPerPage; ++l) {
        generateLine(cls, Rng::mix(p, l, seed), data);
        McTrace tr;
        mc.writebackLine(Addr(p) * kPageBytes + l * kLineBytes, data,
                         tr);
    }
}

} // namespace

TEST(Balloon, DeflateBelowZeroIsClampedNoOp)
{
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(16) << 20;
    CompressoController mc(cfg);
    SimOs os(16);
    BalloonDriver balloon(os, mc);

    // Nothing held: deflate is a clamped no-op, not an underflow.
    EXPECT_EQ(balloon.deflate(5), 0u);
    EXPECT_EQ(balloon.heldPages(), 0u);
    EXPECT_EQ(os.budget(), 16u);

    for (PageNum p = 0; p < 4; ++p) {
        os.touch(p, true);
        fillPage(mc, p, DataClass::kRandom, 11);
    }
    EXPECT_EQ(balloon.inflate(2), 2u);
    // Deflating more than held returns only what the balloon has.
    EXPECT_EQ(balloon.deflate(100), 2u);
    EXPECT_EQ(balloon.heldPages(), 0u);
    EXPECT_EQ(os.budget(), 16u);
    EXPECT_EQ(balloon.deflate(1), 0u);
}

TEST(Balloon, InflateBeyondPhysicalOccupancyClamps)
{
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(16) << 20;
    CompressoController mc(cfg);
    SimOs os(16);
    BalloonDriver balloon(os, mc);
    for (PageNum p = 0; p < 3; ++p) {
        os.touch(p, true);
        fillPage(mc, p, DataClass::kDeltaInt, 13);
    }
    // Only 3 pages are resident; demanding 10 reclaims what exists
    // and never drives the OS budget negative.
    uint64_t got = balloon.inflate(10);
    EXPECT_EQ(got, 3u);
    EXPECT_EQ(os.residentPages(), 0u);
    EXPECT_EQ(balloon.heldPages(), 3u);
    EXPECT_EQ(balloon.inflate(5), 0u);
}

TEST(Balloon, TargetedInflationSkipsNonResident)
{
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(16) << 20;
    CompressoController mc(cfg);
    SimOs os(16);
    BalloonDriver balloon(os, mc);
    for (PageNum p = 0; p < 4; ++p) {
        os.touch(p, true);
        fillPage(mc, p, DataClass::kSmallInt, 17);
    }
    uint64_t before = mc.mpaDataBytes();
    EXPECT_EQ(balloon.inflateTargeted({1, 3, 77}), 2u);
    EXPECT_FALSE(os.isResident(1));
    EXPECT_FALSE(os.isResident(3));
    EXPECT_TRUE(os.isResident(0));
    EXPECT_LT(mc.mpaDataBytes(), before);
    // The freed log reports exactly the reclaimed pages.
    auto freed = balloon.drainFreed();
    ASSERT_EQ(freed.size(), 2u);
    EXPECT_EQ(freed[0], 1u);
    EXPECT_EQ(freed[1], 3u);
    EXPECT_TRUE(balloon.drainFreed().empty());
}

TEST(Balloon, InflateDeflateInterleavedWithFreePageHeals)
{
    // freePage (the PR-2 poison-heal path) and ballooning hit the same
    // controller invalidation machinery; interleaving them must leave
    // freed pages reading zero, survivors intact, and the audit clean.
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(16) << 20;
    CompressoController mc(cfg);
    SimOs os(16);
    BalloonDriver balloon(os, mc);
    for (PageNum p = 0; p < 8; ++p) {
        os.touch(p, true);
        fillPage(mc, p, DataClass::kDeltaInt, 23);
    }

    EXPECT_EQ(balloon.inflate(2), 2u);      // reclaims cold 0, 1
    mc.freePage(5);                         // direct poison-heal free
    EXPECT_EQ(balloon.deflate(1), 1u);
    EXPECT_EQ(balloon.inflateTargeted({6}), 1u);
    mc.freePage(6); // already ballooned away: double free is benign

    // Freed pages read zero...
    Line got;
    for (PageNum p : {PageNum(0), PageNum(1), PageNum(5), PageNum(6)}) {
        McTrace tr;
        mc.fillLine(Addr(p) * kPageBytes, got, tr);
        for (uint8_t b : got)
            ASSERT_EQ(b, 0u) << "page " << p;
    }
    // ...survivors are intact...
    Line expect;
    generateLine(DataClass::kDeltaInt, Rng::mix(7, 0, 23), expect);
    McTrace tr;
    mc.fillLine(Addr(7) * kPageBytes, got, tr);
    EXPECT_EQ(got, expect);
    // ...freed pages re-touch cleanly and hold new data...
    fillPage(mc, 5, DataClass::kText, 29);
    generateLine(DataClass::kText, Rng::mix(5, 0, 29), expect);
    mc.fillLine(Addr(5) * kPageBytes, got, tr);
    EXPECT_EQ(got, expect);
    // ...and the invariant audit stays clean throughout.
    EXPECT_TRUE(mc.audit().clean());
}
