/**
 * @file
 * Observability layer: event-tracer ring semantics, histogram
 * bucketing/percentiles, epoch-sampler boundaries, export formats
 * (Chrome trace JSON, epoch CSV, run JSON), and the guard that an
 * instrumented run reports bit-identical metrics to a disabled one.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json_writer.h"
#include "obs/observer.h"
#include "sim/run_export.h"
#include "sim/runner.h"

using namespace compresso;

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

bool
balancedBraces(const std::string &s)
{
    long depth = 0;
    for (char c : s) {
        if (c == '{')
            ++depth;
        else if (c == '}')
            --depth;
        if (depth < 0)
            return false;
    }
    return depth == 0;
}

// ---------------------------------------------------------------------
// Event tracer
// ---------------------------------------------------------------------

TEST(EventTracer, RingWraparoundKeepsNewestAndCountsDropped)
{
    EventTracer t(4);
    for (uint64_t i = 0; i < 6; ++i)
        t.record(i, ObsEvent::kRepack, /*page=*/100 + i, /*detail=*/0);

    EXPECT_EQ(t.total(), 6u);
    EXPECT_EQ(t.dropped(), 2u);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.countOf(ObsEvent::kRepack), 6u);

    std::vector<uint64_t> ticks;
    t.forEach([&](const TraceEvent &e) { ticks.push_back(e.tick); });
    ASSERT_EQ(ticks.size(), 4u);
    // Oldest-first window of the newest 4 events.
    EXPECT_EQ(ticks, (std::vector<uint64_t>{2, 3, 4, 5}));
}

TEST(EventTracer, NoWraparoundBeforeCapacity)
{
    EventTracer t(8);
    t.record(1, ObsEvent::kMdMiss, 7, 0);
    t.record(2, ObsEvent::kLineOverflow, 8, 3);
    EXPECT_EQ(t.total(), 2u);
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.countOf(ObsEvent::kMdMiss), 1u);
    EXPECT_EQ(t.countOf(ObsEvent::kLineOverflow), 1u);
}

TEST(EventTracer, ChromeTraceExportShape)
{
    EventTracer t(16);
    t.record(3000, ObsEvent::kPageOverflow, 42, 1);
    t.record(6000, ObsEvent::kFaultRecovery, 43,
             uint32_t(FaultRung::kMetaRebuild));

    std::ostringstream os;
    t.writeChromeTrace(os);
    std::string doc = os.str();

    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("thread_name"), std::string::npos);
    EXPECT_NE(doc.find(obsEventName(ObsEvent::kPageOverflow)),
              std::string::npos);
    EXPECT_NE(doc.find(obsEventName(ObsEvent::kFaultRecovery)),
              std::string::npos);
    EXPECT_TRUE(balancedBraces(doc));
}

// ---------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------

TEST(Histogram, BucketBoundaries)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(uint64_t(1) << 20), 21u);
    EXPECT_EQ(Histogram::bucketOf(~uint64_t(0)), 64u);

    for (unsigned b = 1; b < Histogram::kBuckets; ++b) {
        // Each bucket's lower bound maps back into that bucket.
        EXPECT_EQ(Histogram::bucketOf(Histogram::bucketLo(b)), b);
    }
}

TEST(Histogram, CountSumMinMaxMean)
{
    Histogram h;
    for (uint64_t v : {4u, 0u, 9u, 1u})
        h.add(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 14u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 9u);
    EXPECT_DOUBLE_EQ(h.mean(), 3.5);
    EXPECT_EQ(h.bucketCount(0), 1u); // the zero
    EXPECT_EQ(h.bucketCount(1), 1u); // the one
}

TEST(Histogram, PercentilesMonotonicAndClamped)
{
    Histogram h;
    for (uint64_t v = 1; v <= 100; ++v)
        h.add(v);
    uint64_t p50 = h.percentile(0.50);
    uint64_t p90 = h.percentile(0.90);
    uint64_t p99 = h.percentile(0.99);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_GE(p50, h.min());
    EXPECT_LE(p99, h.max());
    EXPECT_EQ(h.percentile(1.0), h.max());
    EXPECT_EQ(h.percentile(0.0), h.min());
}

TEST(Histogram, SingleValueAndEmpty)
{
    Histogram h;
    EXPECT_EQ(h.percentile(0.5), 0u);
    for (int i = 0; i < 5; ++i)
        h.add(7);
    EXPECT_EQ(h.percentile(0.5), 7u);
    EXPECT_EQ(h.min(), 7u);
    EXPECT_EQ(h.max(), 7u);

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.9), 0u);
}

// ---------------------------------------------------------------------
// Epoch sampler
// ---------------------------------------------------------------------

TEST(EpochSampler, BoundariesAndCsvDeltas)
{
    StatGroup g{"g"};
    uint64_t &x = g.stat("x");

    EpochSampler sampler(/*epoch_refs=*/2);
    sampler.registerGroup(&g);
    for (uint64_t i = 1; i <= 5; ++i) {
        x += i; // cumulative 1, 3, 6, 10, 15
        sampler.onRef(/*now_cycles=*/i * 10);
    }
    sampler.snapshot(); // close the partial final epoch
    EXPECT_EQ(sampler.epochs(), 3u);

    std::ostringstream os;
    sampler.writeCsv(os);
    EXPECT_EQ(os.str(), "epoch,refs,cycles,g.x\n"
                        "0,2,20,3\n"
                        "1,4,40,7\n"
                        "2,5,50,5\n");
}

TEST(EpochSampler, RepeatSnapshotAtBoundaryIsNoOp)
{
    StatGroup g{"g"};
    g.stat("x") = 1;
    EpochSampler sampler(1);
    sampler.registerGroup(&g);
    sampler.onRef(10);
    EXPECT_EQ(sampler.epochs(), 1u);
    sampler.snapshot(); // nothing new since the boundary
    EXPECT_EQ(sampler.epochs(), 1u);
}

TEST(EpochSampler, RestartDropsHistory)
{
    StatGroup g{"g"};
    EpochSampler sampler(1);
    sampler.registerGroup(&g);
    g.stat("x") = 5;
    sampler.onRef(10);
    ASSERT_EQ(sampler.epochs(), 1u);
    sampler.restart();
    EXPECT_EQ(sampler.epochs(), 0u);
}

// ---------------------------------------------------------------------
// Observer gating
// ---------------------------------------------------------------------

TEST(Observer, RuntimeGatesAndMonotonicClock)
{
    ObsConfig cfg;
    cfg.enabled = true;
    cfg.trace_events = false;
    cfg.histograms = false;
    Observer obs(cfg);

    obs.record(ObsEvent::kRepack, 1, 0);
    EXPECT_EQ(obs.tracer().total(), 0u);
    EXPECT_EQ(obs.histogram("mc.compressed_line_bytes"), nullptr);

    obs.setNow(10);
    obs.setNow(5); // ignored: the clock never goes backwards
    EXPECT_EQ(obs.now(), 10u);
}

TEST(Observer, SnapshotDigest)
{
    ObsConfig cfg;
    cfg.enabled = true;
    Observer obs(cfg);
    obs.setNow(100);
    obs.record(ObsEvent::kSplitAccess, 3, 2);
    obs.record(ObsEvent::kSplitAccess, 4, 2);
    obs.histogram("h")->add(16);

    ObsSnapshot snap = obs.snapshot();
    EXPECT_TRUE(snap.enabled);
    EXPECT_EQ(snap.events_total, 2u);
    EXPECT_EQ(snap.events_dropped, 0u);
    EXPECT_EQ(snap.event_counts.at(obsEventName(ObsEvent::kSplitAccess)),
              2u);
    EXPECT_EQ(snap.histograms.at("h").count, 1u);
    EXPECT_EQ(snap.histograms.at("h").p50, 16u);
}

// ---------------------------------------------------------------------
// JSON writer + run export
// ---------------------------------------------------------------------

TEST(JsonWriter, EscapesQuotesBackslashesAndControls)
{
    EXPECT_EQ(JsonWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
    std::string nl = JsonWriter::escape("x\ny");
    EXPECT_EQ(nl.find('\n'), std::string::npos);
}

TEST(RunExport, SchemaAndEscapedLabels)
{
    RunResult r;
    r.label = "odd\"label\\1";
    r.cycles = 1000;
    r.insts = 500;
    r.perf = 0.5;
    r.mc_stats.stat("fills") = 7;
    r.dram_stats.stat("reads") = 9;

    std::ostringstream os;
    writeRunsJson(os, "test_tool", {r});
    std::string doc = os.str();

    EXPECT_NE(doc.find("\"compresso-run-v3\""), std::string::npos);
    EXPECT_NE(doc.find("\"test_tool\""), std::string::npos);
    EXPECT_NE(doc.find("odd\\\"label\\\\1"), std::string::npos);
    EXPECT_NE(doc.find("\"fills\""), std::string::npos);
    EXPECT_TRUE(balancedBraces(doc));

    // Deterministic: the same inputs produce the same bytes.
    std::ostringstream os2;
    writeRunsJson(os2, "test_tool", {r});
    EXPECT_EQ(doc, os2.str());
}

TEST(RunExport, SinkParsesFlagsAndWritesDocument)
{
    std::string path = testing::TempDir() + "obs_sink_test.json";
    std::string trace = testing::TempDir() + "obs_sink_test.trace";
    const char *argv[] = {"prog",        "--json", path.c_str(),
                          "--obs-trace", trace.c_str(), "positional"};
    RunSink sink;
    sink.init(6, const_cast<char **>(argv), "sink_test");

    EXPECT_TRUE(sink.obsRequested()); // --obs-trace implies --obs
    ASSERT_EQ(sink.extraArgs().size(), 1u);
    EXPECT_EQ(sink.extraArgs()[0], "positional");

    RunSpec spec;
    sink.apply(spec);
    EXPECT_TRUE(spec.obs.enabled);
    EXPECT_EQ(spec.obs_trace_path, trace);
    RunSpec second;
    sink.apply(second); // export paths go to exactly one run
    EXPECT_TRUE(second.obs.enabled);
    EXPECT_TRUE(second.obs_trace_path.empty());

    RunResult r;
    r.label = "only";
    sink.add(r);
    EXPECT_EQ(sink.finish(), 0);

    std::string doc = slurp(path);
    EXPECT_NE(doc.find("\"compresso-run-v3\""), std::string::npos);
    EXPECT_NE(doc.find("\"only\""), std::string::npos);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// End-to-end: instrumented runs
// ---------------------------------------------------------------------

RunSpec
smallSpec()
{
    RunSpec spec;
    spec.kind = McKind::kCompresso;
    spec.workloads = {"gcc"};
    spec.refs_per_core = 6000;
    spec.warmup_refs = 600;
    return spec;
}

TEST(ObsIntegration, InstrumentedRunExportsAllFormats)
{
#ifdef COMPRESSO_OBS_DISABLED
    GTEST_SKIP() << "emission macros compiled out";
#endif
    std::string trace = testing::TempDir() + "obs_run.trace.json";
    std::string csv = testing::TempDir() + "obs_run.epochs.csv";

    RunSpec spec = smallSpec();
    spec.obs.enabled = true;
    spec.obs.epoch_refs = 1000;
    spec.obs_trace_path = trace;
    spec.obs_epoch_csv_path = csv;
    RunResult r = runSystem(spec);

    EXPECT_TRUE(r.obs.enabled);
    EXPECT_GT(r.obs.events_total, 0u);
    ASSERT_TRUE(r.obs.histograms.count("mc.compressed_line_bytes"));
    const auto &h = r.obs.histograms.at("mc.compressed_line_bytes");
    EXPECT_GT(h.count, 0u);
    EXPECT_LE(h.p50, h.p99);
    // Encoder output, not stored size: an incompressible line can
    // expand slightly before the store-raw fallback kicks in.
    EXPECT_LT(h.max, uint64_t(2 * kLineBytes));

    std::string trace_doc = slurp(trace);
    ASSERT_FALSE(trace_doc.empty());
    EXPECT_EQ(trace_doc[0], '{');
    EXPECT_NE(trace_doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_TRUE(balancedBraces(trace_doc));

    std::string csv_doc = slurp(csv);
    ASSERT_FALSE(csv_doc.empty());
    EXPECT_EQ(csv_doc.rfind("epoch,refs,cycles", 0), 0u);
    // 6000 refs / 1000 per epoch -> at least 6 data rows.
    long rows = long(std::count(csv_doc.begin(), csv_doc.end(), '\n'));
    EXPECT_GE(rows, 7);

    std::remove(trace.c_str());
    std::remove(csv.c_str());
}

TEST(ObsIntegration, DisabledObservabilityIsBitIdentical)
{
    RunResult off = runSystem(smallSpec());

    RunSpec spec = smallSpec();
    spec.obs.enabled = true;
    spec.obs.epoch_refs = 500;
    RunResult on = runSystem(spec);

    EXPECT_FALSE(off.obs.enabled);
    EXPECT_TRUE(on.obs.enabled);

    // Observability must never perturb the simulation.
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.insts, on.insts);
    EXPECT_DOUBLE_EQ(off.comp_ratio, on.comp_ratio);
    EXPECT_DOUBLE_EQ(off.effective_ratio, on.effective_ratio);
    EXPECT_EQ(off.mc_stats.counters(), on.mc_stats.counters());
    EXPECT_EQ(off.dram_stats.counters(), on.dram_stats.counters());

    // Same bar for the host profiler (src/prof): it measures host
    // time, never simulated behaviour.
    RunSpec pspec = smallSpec();
    pspec.prof.enabled = true;
    RunResult prof_on = runSystem(pspec);
    EXPECT_FALSE(off.prof.enabled);
    EXPECT_EQ(off.cycles, prof_on.cycles);
    EXPECT_EQ(off.insts, prof_on.insts);
    EXPECT_DOUBLE_EQ(off.comp_ratio, prof_on.comp_ratio);
    EXPECT_EQ(off.mc_stats.counters(), prof_on.mc_stats.counters());
    EXPECT_EQ(off.dram_stats.counters(), prof_on.dram_stats.counters());
}

TEST(ObsIntegration, BaselineControllersEmitEventsToo)
{
#ifdef COMPRESSO_OBS_DISABLED
    GTEST_SKIP() << "emission macros compiled out";
#endif
    for (McKind kind : {McKind::kLcp, McKind::kRmc}) {
        RunSpec spec = smallSpec();
        spec.kind = kind;
        spec.obs.enabled = true;
        RunResult r = runSystem(spec);
        EXPECT_TRUE(r.obs.enabled) << mcKindName(kind);
        EXPECT_GT(r.obs.histograms.count("mc.compressed_line_bytes"), 0u)
            << mcKindName(kind);
    }
}

} // namespace

TEST(Observer, ConcurrentRecordingKeepsExactTotals)
{
    // Regression for the §13 concurrency pass: the tracer ring is
    // internally synchronized and setNow() is an atomic CAS-max (the
    // old compare-then-store lost updates under concurrent setters).
    // N threads record concurrently; every event must be accounted
    // for and the clock must equal the maximum of all setNow values.
    ObsConfig cfg;
    cfg.enabled = true;
    cfg.trace_capacity = 1 << 12;
    Observer obs(cfg);

    constexpr int kThreads = 8;
    constexpr int kPerThread = 2000;
    std::vector<std::thread> recorders;
    recorders.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        recorders.emplace_back([&obs, t] {
            for (int i = 0; i < kPerThread; ++i) {
                obs.setNow(uint64_t(t) * kPerThread + i);
                obs.record(ObsEvent::kRepack, uint64_t(i), uint32_t(t));
            }
        });
    }
    for (auto &th : recorders)
        th.join();

    EXPECT_EQ(obs.tracer().total(), uint64_t(kThreads) * kPerThread);
    // Ring keeps the newest capacity entries; drops = total - size.
    EXPECT_EQ(obs.tracer().dropped(),
              uint64_t(kThreads) * kPerThread - obs.tracer().size());
    EXPECT_EQ(obs.now(), uint64_t(kThreads) * kPerThread - 1);
}
