/**
 * @file
 * Tests for the DDR4 timing model (Tab. III parameters).
 */

#include <gtest/gtest.h>

#include "dram/dram_model.h"

using namespace compresso;

namespace {

// With cpu_per_dclk_x4 = 9 (2.25 CPU cycles per DRAM clock):
// tRCD+tCL = 36 dclk = 81 cpu; +tBURST 4 dclk = 9 cpu.
constexpr Cycle kMissLatency = 81 + 9;
constexpr Cycle kHitLatency = 18 * 9 / 4 + 9; // tCL + burst = 40+9

} // namespace

TEST(Dram, FirstAccessPaysActivate)
{
    DramModel d;
    Cycle done = d.access(0, false, 0);
    EXPECT_EQ(done, kMissLatency);
    EXPECT_EQ(d.stats().get("row_misses"), 1u);
    EXPECT_EQ(d.stats().get("activates"), 1u);
}

TEST(Dram, RowHitIsCheaper)
{
    DramModel d;
    DramConfig cfg;
    Cycle first = d.access(0, false, 0);
    // Same bank (line-interleaved: stride = 64 * banks), same row.
    Cycle second = d.access(64 * cfg.banks, false, first);
    EXPECT_EQ(second - first, kHitLatency);
    EXPECT_EQ(d.stats().get("row_hits"), 1u);
}

TEST(Dram, RowConflictPaysPrecharge)
{
    DramModel d;
    DramConfig cfg;
    Cycle first = d.access(0, false, 0);
    // Same bank (multiple of 64*banks), far enough for another row.
    Addr conflict = Addr(cfg.row_bytes) * cfg.banks;
    Cycle second = d.access(conflict, false, first);
    EXPECT_GT(second - first, kMissLatency);
    EXPECT_EQ(d.stats().get("row_conflicts"), 1u);
    EXPECT_EQ(d.stats().get("precharges"), 1u);
}

TEST(Dram, DifferentBanksOverlap)
{
    DramModel d;
    Cycle a = d.access(0, false, 0);
    // The adjacent line lives in the next bank: overlaps except for
    // bus serialization.
    Cycle b = d.access(64, false, 0);
    EXPECT_LT(b, 2 * kMissLatency);
    EXPECT_GE(b, a); // the shared data bus serializes the bursts
}

TEST(Dram, BusSerializesBursts)
{
    DramModel d;
    DramConfig cfg;
    Cycle prev = 0;
    for (unsigned i = 0; i < 4; ++i) {
        Cycle t = d.access(Addr(i) * kLineBytes, false, 0);
        EXPECT_GE(t, prev + 9); // at least one burst apart
        prev = t;
    }
}

TEST(Dram, BankBusyDelaysNextAccess)
{
    DramModel d;
    DramConfig cfg;
    Cycle a = d.access(0, false, 0);
    // Same bank again immediately: must wait for the bank.
    Cycle b = d.access(64 * cfg.banks, false, 0);
    EXPECT_GE(b, a);
}

TEST(Dram, ReadsAndWritesCounted)
{
    DramModel d;
    d.access(0, false, 0);
    d.access(64 * 16, true, 0);
    d.access(128 * 16, true, 0);
    EXPECT_EQ(d.stats().get("reads"), 1u);
    EXPECT_EQ(d.stats().get("writes"), 2u);
}

TEST(Dram, ResetClearsState)
{
    DramModel d;
    d.access(0, false, 0);
    d.reset();
    EXPECT_EQ(d.stats().get("reads"), 0u);
    Cycle done = d.access(0, false, 0);
    EXPECT_EQ(done, kMissLatency); // row buffer closed again
}

TEST(Dram, LaterNowDelaysCompletion)
{
    DramModel d;
    Cycle t1 = d.access(0, false, 1000);
    EXPECT_EQ(t1, 1000 + kMissLatency);
}
