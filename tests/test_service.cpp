/**
 * @file
 * Multi-tenant service tests (DESIGN.md §17): session generation
 * determinism and divergence tracking, the QoS shed ladder and
 * per-tenant inflation budgets, most-compressible-first tenant-scoped
 * reclaim, serial-vs-parallel bit-identity of the merged service
 * document, fairness under an adversarial tenant, adversary-rotation
 * soak, and tenant-tagged post-mortem bundles.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "os/balloon.h"
#include "service/service.h"
#include "service/service_export.h"
#include "sim/schema_versions.h"
#include "workloads/datagen.h"

using namespace compresso;

namespace {

std::vector<TenantSpec>
makeTenants(unsigned n, uint64_t pages = 64)
{
    const char *const profiles[] = {"gcc", "mcf", "bzip2", "gromacs"};
    std::vector<TenantSpec> specs;
    for (unsigned t = 0; t < n; ++t) {
        TenantSpec s;
        s.name = "t" + std::to_string(t);
        s.pages = pages;
        s.profile = profiles[t % 4];
        specs.push_back(s);
    }
    return specs;
}

ServiceConfig
smallService(unsigned tenants, uint64_t rounds = 6)
{
    ServiceConfig cfg;
    cfg.seed = 7;
    cfg.tenants = makeTenants(tenants);
    cfg.rounds = rounds;
    cfg.refs_per_round = 128;
    cfg.compresso.mdcache = MetadataCacheConfig{4 * 1024, 8, false};
    return cfg;
}

std::string
exportString(const ServiceResult &res)
{
    std::ostringstream os;
    writeServiceJson(os, "test", res);
    return os.str();
}

/** Write one page through the controller and make it OS-resident. */
void
writePage(MemoryController &mc, SimOs &os, PageNum p, DataClass cls,
          uint64_t seed)
{
    os.touch(p, true);
    Line data;
    for (unsigned l = 0; l < kLinesPerPage; ++l) {
        generateLine(cls, Rng::mix(p, l, seed), data);
        McTrace tr;
        mc.writebackLine(Addr(p) * kPageBytes + l * kLineBytes, data,
                         tr);
    }
}

} // namespace

// ---------------------------------------------------------------- session

TEST(TenantSession, GenerationIsAPureFunctionOfSessionState)
{
    TenantSpec spec = makeTenants(1)[0];
    TenantPartition part{0, 0, spec.pages};
    TenantSession a(spec, part, 99), b(spec, part, 99);

    std::vector<ServiceRef> ra, rb;
    for (int batch = 0; batch < 3; ++batch) {
        a.generate(64, ra);
        b.generate(64, rb);
        ASSERT_EQ(ra.size(), 64u);
        for (size_t i = 0; i < ra.size(); ++i) {
            EXPECT_EQ(ra[i].addr, rb[i].addr);
            EXPECT_EQ(ra[i].write, rb[i].write);
            EXPECT_EQ(ra[i].data, rb[i].data);
        }
    }
    EXPECT_EQ(a.refsGenerated(), 192u);
}

TEST(TenantSession, BatchesStayInsideThePartition)
{
    TenantSpec spec = makeTenants(1)[0];
    spec.pages = 32;
    TenantPartition part{1, 100, 32}; // base page 100
    TenantSession s(spec, part, 5);

    std::vector<ServiceRef> refs;
    s.generate(512, refs);
    for (const ServiceRef &r : refs) {
        PageNum p = r.addr / kPageBytes;
        EXPECT_TRUE(part.contains(p)) << "page " << p;
    }
}

TEST(TenantSession, DivergenceMarksHealAndPageFreesStick)
{
    TenantSpec spec = makeTenants(1)[0];
    TenantPartition part{0, 0, spec.pages};
    TenantSession s(spec, part, 3);

    Addr a = 5 * kPageBytes + 2 * kLineBytes;
    EXPECT_FALSE(s.divergent(a));
    s.markDivergent(a);
    EXPECT_TRUE(s.divergent(a));
    s.clearDivergent(a);
    EXPECT_FALSE(s.divergent(a));

    s.onPageFreed(5);
    EXPECT_TRUE(s.divergent(a)); // whole page diverged
    EXPECT_EQ(s.pagesLost(), 1u);
    s.clearDivergent(a); // a committed write heals the line
    EXPECT_FALSE(s.divergent(a));
}

TEST(TenantSession, AdversaryToggleRestoresThePristineProfile)
{
    TenantSpec spec = makeTenants(1)[0];
    TenantPartition part{0, 0, spec.pages};
    TenantSession s(spec, part, 3);

    EXPECT_FALSE(s.adversary());
    s.setAdversary(true);
    EXPECT_TRUE(s.adversary());
    std::vector<ServiceRef> refs;
    s.generate(256, refs); // hostile stream still partition-bounded
    for (const ServiceRef &r : refs)
        EXPECT_TRUE(part.contains(r.addr / kPageBytes));
    s.setAdversary(false);
    EXPECT_FALSE(s.adversary());
}

// ------------------------------------------------------------------- qos

namespace {

/** Controller + governor rig with the QoS interposer installed. */
struct QosRig
{
    TenantRegistry reg;
    CompressoController mc;
    SimOs os;
    BalloonDriver balloon;
    PressureGovernor gov;
    QosPolicy qos;

    explicit QosRig(std::vector<TenantSpec> specs,
                    uint64_t installed = 1 << 20)
        : reg(std::move(specs)), mc([installed] {
              CompressoConfig c;
              c.installed_bytes = installed;
              return c;
          }()),
          os(reg.totalPages()), balloon(os, mc),
          gov([installed] {
              GovernorConfig g;
              g.total_chunks = installed / kChunkBytes;
              return g;
          }(), mc, os, balloon),
          qos(QosConfig{}, reg, gov, mc)
    {
    }

    ~QosRig() { mc.attachPressureListener(nullptr); }

    /** Fill the machine until the governor reads @p frac free. */
    void
    fillTo(double frac)
    {
        PageNum next = 0;
        while (gov.freeFraction() >= frac && next < reg.totalPages())
            writePage(mc, os, next++, DataClass::kRandom, 13);
        gov.poll();
    }
};

} // namespace

TEST(QosPolicy, ShedLadderClipsOnlyOverBudgetTenants)
{
    QosRig rig(makeTenants(2, 256));

    // Tenant 0 owns 90% of the metadata-miss traffic (fair share 50%).
    rig.qos.noteMdOps(0, 900);
    rig.qos.noteMdOps(1, 100);
    EXPECT_EQ(rig.qos.mdOps(0), 900u);

    // No pressure: nobody is shed, however skewed.
    EXPECT_DOUBLE_EQ(rig.qos.shedFraction(0), 0.0);

    rig.fillTo(0.25); // elevated
    ASSERT_EQ(rig.gov.level(), PressureLevel::kElevated);
    EXPECT_DOUBLE_EQ(rig.qos.shedFraction(0), 0.5);
    EXPECT_DOUBLE_EQ(rig.qos.shedFraction(1), 0.0);

    rig.fillTo(0.10); // critical
    ASSERT_EQ(rig.gov.level(), PressureLevel::kCritical);
    EXPECT_DOUBLE_EQ(rig.qos.shedFraction(0), 0.75);

    rig.fillTo(0.03); // emergency
    ASSERT_EQ(rig.gov.level(), PressureLevel::kEmergency);
    EXPECT_DOUBLE_EQ(rig.qos.shedFraction(0), 0.875);
    EXPECT_DOUBLE_EQ(rig.qos.shedFraction(1), 0.0);
}

TEST(QosPolicy, ExplicitMdcacheShareTightensTheBudget)
{
    std::vector<TenantSpec> specs = makeTenants(2, 256);
    specs[0].mdcache_share = 0.05; // contract: 5% of miss traffic
    QosRig rig(std::move(specs));

    rig.qos.noteMdOps(0, 100); // 10% share — double its contract
    rig.qos.noteMdOps(1, 900);
    rig.fillTo(0.25);
    ASSERT_EQ(rig.gov.level(), PressureLevel::kElevated);
    EXPECT_DOUBLE_EQ(rig.qos.shedFraction(0), 0.5);
    // Tenant 1 is over fair share (90% > 50% x 1.25) — shed too.
    EXPECT_DOUBLE_EQ(rig.qos.shedFraction(1), 0.5);
}

TEST(QosPolicy, InflationBudgetIsPerTenantPerRound)
{
    std::vector<TenantSpec> specs = makeTenants(2);
    specs[0].inflation_budget = 2;
    QosRig rig(std::move(specs));

    // Tenant 0: two admissions, then the budget denies ahead of the
    // governor (which would admit at normal pressure).
    rig.qos.setCurrentTenant(0);
    EXPECT_TRUE(rig.qos.admitOp(PressureOp::kInflation, 8));
    EXPECT_TRUE(rig.qos.admitOp(PressureOp::kInflation, 8));
    EXPECT_FALSE(rig.qos.admitOp(PressureOp::kInflation, 8));
    EXPECT_EQ(rig.qos.inflationDenied(0), 1u);

    // Tenant 1 has its own budget.
    rig.qos.setCurrentTenant(1);
    EXPECT_TRUE(rig.qos.admitOp(PressureOp::kInflation, 8));
    EXPECT_EQ(rig.qos.inflationDenied(1), 0u);

    // New round: the window resets, the lifetime denial count sticks.
    rig.qos.newRound();
    rig.qos.setCurrentTenant(0);
    EXPECT_TRUE(rig.qos.admitOp(PressureOp::kInflation, 8));
    EXPECT_EQ(rig.qos.inflationDenied(0), 1u);

    // Non-inflation ops bypass the tenant budget entirely.
    EXPECT_TRUE(rig.qos.admitOp(PressureOp::kRepack, 8));
    rig.qos.setCurrentTenant(kNoTenant);
}

// --------------------------------------------------- tenant-scoped reclaim

TEST(TenantReclaim, TargetedBallooningFreesMostCompressibleFirst)
{
    TenantRegistry reg(makeTenants(2, 32));
    CompressoConfig cc;
    cc.installed_bytes = 2 * 1024 * 1024;
    CompressoController mc(cc);
    SimOs os(reg.totalPages());
    BalloonDriver balloon(os, mc);
    balloon.setPartitionPolicy(&reg);

    // Victim partition: half cheap (zero) pages, half expensive
    // (random) ones; the neighbour partition all expensive.
    for (PageNum p = 0; p < 32; ++p)
        writePage(mc, os, p,
                  p % 2 == 0 ? DataClass::kZero : DataClass::kRandom,
                  21);
    for (PageNum p = 32; p < 64; ++p)
        writePage(mc, os, p, DataClass::kRandom, 21);

    // The service's rebalance step: candidates from the scoped window,
    // most-compressible first, ties on page number.
    std::vector<PageNum> freed;
    {
        PartitionScope scope(reg, os, 0);
        std::vector<PageNum> cand = os.coldPages(64);
        for (PageNum p : cand)
            ASSERT_LT(p, 32u) << "candidate outside the window";
        std::sort(cand.begin(), cand.end(),
                  [&mc](PageNum a, PageNum b) {
                      uint64_t ba = mc.pageCompressedBytes(a);
                      uint64_t bb = mc.pageCompressedBytes(b);
                      return ba != bb ? ba < bb : a < b;
                  });
        cand.resize(8);
        EXPECT_EQ(balloon.inflateTargeted(cand), 8u);
        freed = balloon.drainFreed();
    }

    // Exactly the 8 cheapest pages: the zero-class even pages.
    ASSERT_EQ(freed.size(), 8u);
    for (PageNum p : freed) {
        EXPECT_LT(p, 32u);
        EXPECT_EQ(p % 2, 0u) << "freed an expensive page " << p;
    }
    EXPECT_EQ(balloon.partitionRejects(), 0u);
    EXPECT_EQ(reg.crossPartitionAttempts(), 0u);
    balloon.setPartitionPolicy(nullptr);
}

// --------------------------------------------------------------- service

TEST(Service, MergedDocumentIsBitIdenticalAcrossJobs)
{
    ServiceConfig cfg = smallService(4);
    cfg.tenants[1].adversary = true; // pressure makes the test honest

    ServiceConfig serial = cfg, parallel = cfg;
    serial.jobs = 1;
    parallel.jobs = 4;
    ServiceResult a = runService(serial);
    ServiceResult b = runService(parallel);

    EXPECT_EQ(a.total_refs, b.total_refs);
    EXPECT_EQ(exportString(a), exportString(b));
}

TEST(Service, ExportLeadsWithTheRegisteredSchema)
{
    ServiceConfig cfg = smallService(2, 2);
    std::string doc = exportString(runService(cfg));
    std::string expect =
        std::string("{\"schema\":\"") + kServiceJsonSchema + "\"";
    EXPECT_EQ(doc.compare(0, expect.size(), expect), 0) << doc;
    EXPECT_NE(doc.find("\"isolation\""), std::string::npos);
    EXPECT_NE(doc.find("\"latency_breakdown\""), std::string::npos);
}

TEST(Service, AdversaryAmongTenantsCannotCorruptNeighbours)
{
    ServiceConfig cfg = smallService(4, 8);
    cfg.tenants[0].adversary = true;
    ServiceResult res = runService(cfg);

    EXPECT_EQ(res.silent_corruptions, 0u);
    EXPECT_EQ(res.audit_violations, 0u);
    EXPECT_EQ(res.partition_audit_violations, 0u);
    // Scoped reclaim never leaked across a partition boundary.
    EXPECT_EQ(res.balloon_partition_rejects, 0u);
    EXPECT_EQ(res.os_window_rejects, 0u);
    EXPECT_TRUE(res.tenants[0].adversary);
    for (const TenantReport &t : res.tenants)
        EXPECT_EQ(t.verify_failures, 0u) << t.name;
}

TEST(Service, RebalanceReclaimsUnderPressure)
{
    ServiceConfig cfg = smallService(4, 10);
    cfg.tenants[3].adversary = true;
    // Tight machine: 55% of promised bytes forces critical+ rounds.
    cfg.installed_bytes =
        4 * 64 * kPageBytes * 55 / 100;
    ServiceResult res = runService(cfg);

    EXPECT_GE(res.max_level, uint32_t(PressureLevel::kCritical));
    EXPECT_GT(res.rebalances, 0u);
    EXPECT_GT(res.rebalance_pages, 0u);
    uint64_t lost = 0;
    for (const TenantReport &t : res.tenants)
        lost += t.pages_lost;
    EXPECT_GE(lost, res.rebalance_pages);
    EXPECT_EQ(res.silent_corruptions, 0u);
    EXPECT_EQ(res.partition_audit_violations, 0u);
}

TEST(Service, AdversaryRotationSoaksCleanly)
{
    ServiceConfig cfg = smallService(3, 9);
    cfg.adversary_rotate_every = 3; // rounds 0-2: t0, 3-5: t1, 6-8: t2
    ServiceResult res = runService(cfg);

    for (const TenantReport &t : res.tenants)
        EXPECT_TRUE(t.adversary) << t.name << " never took the role";
    EXPECT_EQ(res.silent_corruptions, 0u);
    EXPECT_EQ(res.audit_violations, 0u);
    EXPECT_EQ(res.partition_audit_violations, 0u);
}

TEST(Service, WeightsScaleReferenceCounts)
{
    ServiceConfig cfg = smallService(2, 4);
    cfg.tenants[0].weight = 3;
    ServiceResult res = runService(cfg);
    // No shedding expected at these sizes; weight 3 serves 3x refs.
    EXPECT_EQ(res.tenants[0].refs + res.tenants[0].shed,
              3 * (res.tenants[1].refs + res.tenants[1].shed));
}

TEST(Service, PostmortemBundlesCarryTheTenantTag)
{
    ServiceConfig cfg = smallService(4, 10);
    cfg.tenants[0].adversary = true;
    cfg.installed_bytes = 4 * 64 * kPageBytes * 55 / 100;
    cfg.postmortem = true;
    ServiceResult res = runService(cfg);

    ASSERT_GT(res.postmortems.size(), 0u)
        << "pressure run took no post-mortems";
    for (const PostmortemBundle &b : res.postmortems) {
        ASSERT_EQ(b.notes.count("tenant"), 1u);
        ASSERT_EQ(b.notes.count("tenants"), 1u);
        EXPECT_EQ(b.notes.at("tenants"), "4");
        auto svc = b.sections.find("service");
        ASSERT_NE(svc, b.sections.end());
        EXPECT_EQ(svc->second.count("round"), 1u);
        EXPECT_EQ(svc->second.count("current_tenant"), 1u);
    }
}
