/**
 * @file
 * Anomaly flight recorder (src/obs/flight_recorder.h, DESIGN.md §16):
 * trigger/chain/rate-limit unit behavior, the Observer record() tap
 * and two-level gate, watermark history, provider sections, the
 * compresso-postmortem-v1 export (round-tripped through
 * tools/postmortem_report.py), and chaos-postmortem determinism.
 */

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/observer.h"
#include "pressure/chaos.h"
#include "sim/postmortem_export.h"

using namespace compresso;

namespace {

FlightRecorderConfig
smallConfig()
{
    FlightRecorderConfig cfg;
    cfg.ring_snapshot = 8;
    cfg.max_bundles = 4;
    cfg.chain_capacity = 4;
    cfg.rearm_triggers = 4;
    cfg.watermark_capacity = 2;
    return cfg;
}

// ---------------------------------------------------------------------
// Unit behavior (recorder standalone, null clock/tracer/attrib)
// ---------------------------------------------------------------------

TEST(FlightRecorder, FirstTriggerSnapshotsThenRearms)
{
    FlightRecorder fr(smallConfig(), nullptr, nullptr, nullptr);
    fr.trigger(PostmortemTrigger::kOomRescue, 1, 0);
    EXPECT_EQ(fr.bundleCount(), 1u);
    EXPECT_EQ(fr.suppressed(), 0u);

    // Triggers 2..4 fall inside the re-arm window.
    for (int i = 0; i < 3; ++i)
        fr.trigger(PostmortemTrigger::kOomRescue, 1, 0);
    EXPECT_EQ(fr.bundleCount(), 1u);
    EXPECT_EQ(fr.suppressed(), 3u);

    // Trigger 5 is rearm_triggers past the last snapshot.
    fr.trigger(PostmortemTrigger::kOomRescue, 1, 0);
    EXPECT_EQ(fr.bundleCount(), 2u);
    EXPECT_EQ(fr.triggersTotal(), 5u);

    std::vector<PostmortemBundle> bundles = fr.bundles();
    const PostmortemBundle &b = bundles.back();
    EXPECT_EQ(b.trigger, PostmortemTrigger::kOomRescue);
    EXPECT_EQ(b.triggers_total, 5u);
    EXPECT_EQ(b.triggers_suppressed, 3u);
}

TEST(FlightRecorder, ChainMergesRepeatsAndCountsDrops)
{
    FlightRecorderConfig cfg = smallConfig();
    cfg.chain_capacity = 2;
    FlightRecorder fr(cfg, nullptr, nullptr, nullptr);

    // Three identical (kind, detail) triggers merge into one entry.
    for (int i = 0; i < 3; ++i)
        fr.trigger(PostmortemTrigger::kSwapFull, 7, 0);
    // A different kind appends; the chain is now at capacity.
    fr.trigger(PostmortemTrigger::kOomRescue, 8, 0);
    // Another new (kind, detail) can only be dropped...
    fr.trigger(PostmortemTrigger::kWatchdogBreach, 9, 1);
    // ...but merging into the newest entry still works at capacity.
    fr.trigger(PostmortemTrigger::kOomRescue, 10, 0, /*force=*/true);

    std::vector<PostmortemBundle> bundles = fr.bundles();
    const PostmortemBundle &b = bundles.back();
    ASSERT_EQ(b.chain.size(), 2u);
    EXPECT_EQ(b.chain[0].kind, PostmortemTrigger::kSwapFull);
    EXPECT_EQ(b.chain[0].count, 3u);
    EXPECT_EQ(b.chain[0].page, 7u);
    EXPECT_EQ(b.chain[1].kind, PostmortemTrigger::kOomRescue);
    EXPECT_EQ(b.chain[1].count, 2u);
    EXPECT_EQ(b.chain_dropped, 1u);
    // Invariant checked by postmortem_report.py: entry counts plus
    // drops reproduce the trigger total.
    EXPECT_EQ(b.chain[0].count + b.chain[1].count + b.chain_dropped,
              b.triggers_total);
}

TEST(FlightRecorder, ForceBypassesRearmButNotBundleCap)
{
    FlightRecorderConfig cfg = smallConfig();
    cfg.max_bundles = 2;
    cfg.rearm_triggers = 1000;
    FlightRecorder fr(cfg, nullptr, nullptr, nullptr);

    fr.trigger(PostmortemTrigger::kChaosStorm, 0, 1);
    fr.trigger(PostmortemTrigger::kChaosStorm, 1, 2, /*force=*/true);
    EXPECT_EQ(fr.bundleCount(), 2u);
    fr.trigger(PostmortemTrigger::kChaosStorm, 2, 3, /*force=*/true);
    EXPECT_EQ(fr.bundleCount(), 2u);
    EXPECT_EQ(fr.suppressed(), 1u);
}

TEST(FlightRecorder, TicksComeFromTheSimulatedClock)
{
    std::atomic<uint64_t> now{123};
    FlightRecorder fr(smallConfig(), &now, nullptr, nullptr);
    fr.trigger(PostmortemTrigger::kOomRescue, 1, 0);
    now.store(200);
    fr.trigger(PostmortemTrigger::kSwapFull, 2, 0, /*force=*/true);

    std::vector<PostmortemBundle> bundles = fr.bundles();
    ASSERT_EQ(bundles.size(), 2u);
    EXPECT_EQ(bundles[0].tick, 123u);
    EXPECT_EQ(bundles[1].tick, 200u);
    ASSERT_EQ(bundles[1].chain.size(), 2u);
    EXPECT_EQ(bundles[1].chain[0].first_tick, 123u);
    EXPECT_EQ(bundles[1].chain[1].first_tick, 200u);
}

TEST(FlightRecorder, OnEventMapsAnomalyKindsOnly)
{
    FlightRecorder fr(smallConfig(), nullptr, nullptr, nullptr);

    // Benign kinds never trigger.
    fr.onEvent(ObsEvent::kMdMiss, 1, 0);
    fr.onEvent(ObsEvent::kRepack, 2, 0);
    // Routine pressure transitions (normal/elevated) are ignored.
    fr.onEvent(ObsEvent::kPressureLevel, 0, 0);
    fr.onEvent(ObsEvent::kPressureLevel, 0, 1);
    // The ladder's benign first rung (metadata rebuild) is ignored.
    fr.onEvent(ObsEvent::kFaultRecovery, 3,
               uint32_t(FaultRung::kMetaRebuild));
    EXPECT_EQ(fr.triggersTotal(), 0u);

    fr.onEvent(ObsEvent::kPressureLevel, 0, 2);
    EXPECT_EQ(fr.bundles().back().trigger,
              PostmortemTrigger::kPressureCritical);
    fr.onEvent(ObsEvent::kPressureLevel, 0, 3);
    fr.onEvent(ObsEvent::kFaultRecovery, 3,
               uint32_t(FaultRung::kInflateSafety));
    fr.onEvent(ObsEvent::kWatchdogBreach, 4, 1);
    fr.onEvent(ObsEvent::kOpThrottled, 5, 2);
    fr.onEvent(ObsEvent::kOomRescue, 6, 1);
    fr.onEvent(ObsEvent::kSwapFull, 7, 0);
    EXPECT_EQ(fr.triggersTotal(), 7u);

    std::vector<PostmortemBundle> bundles = fr.bundles();
    const PostmortemBundle &b = bundles.back();
    ASSERT_GE(b.chain.size(), 1u);
    EXPECT_EQ(b.chain[0].kind, PostmortemTrigger::kPressureCritical);
}

TEST(FlightRecorder, WatermarkHistoryIsBounded)
{
    FlightRecorder fr(smallConfig(), nullptr, nullptr, nullptr);
    fr.noteLevel(0, 900);
    fr.noteLevel(1, 400);
    fr.noteLevel(2, 100); // capacity 2: evicts the oldest
    fr.trigger(PostmortemTrigger::kPressureCritical, 0, 2);

    std::vector<PostmortemBundle> bundles = fr.bundles();
    const PostmortemBundle &b = bundles.back();
    ASSERT_EQ(b.watermarks.size(), 2u);
    EXPECT_EQ(b.watermarks[0].level, 1u);
    EXPECT_EQ(b.watermarks[0].free_permille, 400u);
    EXPECT_EQ(b.watermarks[1].level, 2u);
    EXPECT_EQ(b.watermarks_dropped, 1u);
}

TEST(FlightRecorder, NotesAndProvidersFillEveryBundle)
{
    FlightRecorder fr(smallConfig(), nullptr, nullptr, nullptr);
    fr.setNote("seed", "7");
    fr.addProvider([](PostmortemBundle &b) {
        b.sections["governor"]["level"] = 2;
        b.sections["governor"]["free_chunks"] = 55;
    });
    fr.trigger(PostmortemTrigger::kOomRescue, 1, 0);
    fr.setNote("storm", "swap_storm");
    fr.trigger(PostmortemTrigger::kSwapFull, 2, 0, /*force=*/true);

    std::vector<PostmortemBundle> bundles = fr.bundles();
    ASSERT_EQ(bundles.size(), 2u);
    EXPECT_EQ(bundles[0].notes.at("seed"), "7");
    EXPECT_EQ(bundles[0].notes.count("storm"), 0u);
    EXPECT_EQ(bundles[1].notes.at("storm"), "swap_storm");
    EXPECT_EQ(bundles[1].sections.at("governor").at("level"), 2u);
    EXPECT_EQ(bundles[1].sections.at("governor").at("free_chunks"),
              55u);
}

#if !defined(COMPRESSO_OBS_DISABLED) && !defined(COMPRESSO_CHECKED_BUILD)
TEST(FlightRecorder, ConservationFailureFiresForcedTrigger)
{
    FlightRecorder fr(smallConfig(), nullptr, nullptr, nullptr);
    CycleAttributor attrib;
    attrib.setFlightRecorder(&fr);

    AttribVec comp{};
    comp[size_t(AttribComp::kDecompress)] = 5;
    attrib.record(0x1000, /*total=*/10, comp); // 5 != 10: drift
    EXPECT_EQ(attrib.conservationFailures(), 1u);
    ASSERT_EQ(fr.bundleCount(), 1u);
    EXPECT_EQ(fr.bundles().back().trigger,
              PostmortemTrigger::kConservation);
}
#endif

// ---------------------------------------------------------------------
// Observer integration: the record() tap and the two-level gate
// ---------------------------------------------------------------------

TEST(FlightRecorder, ObserverTapSnapshotsComponentTaggedRing)
{
    ObsConfig oc;
    oc.enabled = true;
    oc.attribution = false;
    Observer obs(oc);
#ifdef COMPRESSO_OBS_DISABLED
    // Compile-time half of the gate: the accessor constant-folds away.
    EXPECT_EQ(obs.flightRecorder(), nullptr);
#else
    FlightRecorder *fr = obs.flightRecorder();
    ASSERT_NE(fr, nullptr);

    obs.setNow(10);
    obs.record(ObsEvent::kMdMiss, 1);
    obs.record(ObsEvent::kRepack, 2);
    obs.setNow(20);
    obs.record(ObsEvent::kOomRescue, 3, 1);

    ASSERT_EQ(fr->bundleCount(), 1u);
    std::vector<PostmortemBundle> bundles = fr->bundles();
    const PostmortemBundle &b = bundles.back();
    EXPECT_EQ(b.trigger, PostmortemTrigger::kOomRescue);
    EXPECT_EQ(b.tick, 20u);
    ASSERT_EQ(b.ring.size(), 3u);
    EXPECT_EQ(b.ring[0].kind, ObsEvent::kMdMiss);
    EXPECT_EQ(b.ring[0].tick, 10u);
    EXPECT_EQ(b.ring[2].kind, ObsEvent::kOomRescue);
    EXPECT_EQ(b.ring[2].tick, 20u);
    EXPECT_EQ(b.ring_total, 3u);
    // The export derives component tags from the event kind.
    EXPECT_EQ(obsEventComp(b.ring[0].kind), AttribComp::kMdcacheMiss);
    EXPECT_EQ(obsEventComp(b.ring[2].kind),
              AttribComp::kPressureStall);
#endif
}

TEST(FlightRecorder, RuntimeGateKeepsRecorderOff)
{
    // The runtime half of the gate is the null Observer* components
    // hold when obs is off; within a constructed Observer, the
    // postmortem knob alone decides whether the recorder exists.
    ObsConfig no_pm;
    no_pm.enabled = true;
    no_pm.postmortem = false;
    Observer obs(no_pm);
    EXPECT_EQ(obs.flightRecorder(), nullptr);
    // The tap must be a no-op, not a crash.
    obs.record(ObsEvent::kOomRescue, 1, 1);
}

// ---------------------------------------------------------------------
// Export round-trip
// ---------------------------------------------------------------------

PostmortemBundle
sampleBundle()
{
    FlightRecorder fr(smallConfig(), nullptr, nullptr, nullptr);
    fr.setNote("kind", "compresso");
    fr.setNote("seed", "1");
    fr.addProvider([](PostmortemBundle &b) {
        b.sections["governor"]["level"] = 3;
    });
    fr.noteLevel(2, 120);
    fr.trigger(PostmortemTrigger::kSwapFull, 11, 0);
    return fr.bundles().back();
}

TEST(PostmortemExport, DocumentNamesTriggerRingAndSections)
{
    std::ostringstream os;
    writePostmortemJson(os, "test_flight_recorder", sampleBundle());
    std::string doc = os.str();

    EXPECT_NE(doc.find(kPostmortemJsonSchema), std::string::npos);
    EXPECT_NE(doc.find("\"tool\""), std::string::npos);
    EXPECT_NE(doc.find("swap_full"), std::string::npos);
    EXPECT_NE(doc.find("\"trigger_chain\""), std::string::npos);
    EXPECT_NE(doc.find("\"ring\""), std::string::npos);
    EXPECT_NE(doc.find("\"latency_breakdown\""), std::string::npos);
    EXPECT_NE(doc.find("\"watermarks\""), std::string::npos);
    EXPECT_NE(doc.find("\"critical\""), std::string::npos);
    EXPECT_NE(doc.find("\"governor\""), std::string::npos);
    EXPECT_NE(doc.find("\"notes\""), std::string::npos);
    EXPECT_NE(doc.find("\"environment\""), std::string::npos);
}

bool
havePython()
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    return std::system("python3 -c 'pass' >/dev/null 2>&1") == 0;
}

int
runReportTool(const std::string &args)
{
    // tests/test_flight_recorder.cpp -> <repo>/tools
    std::string file = __FILE__;
    std::string dir = file.substr(0, file.rfind('/'));
    std::string cmd = "python3 " + dir +
                      "/../tools/postmortem_report.py " + args +
                      " >/dev/null 2>&1";
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    return std::system(cmd.c_str());
}

TEST(PostmortemExport, BundlePassesPythonValidator)
{
    if (!havePython())
        GTEST_SKIP() << "python3 unavailable";
    std::string path =
        testing::TempDir() + "flight_recorder_bundle.json";
    ASSERT_TRUE(
        writePostmortemJson(path, "test_flight_recorder",
                            sampleBundle()));
    EXPECT_EQ(runReportTool("check " + path), 0);
    EXPECT_EQ(runReportTool("summary " + path), 0);
    EXPECT_EQ(runReportTool("triage " + path), 0);
    // Identical bundles diff clean (exit 0).
    EXPECT_EQ(runReportTool("diff " + path + " " + path), 0);
}

TEST(PostmortemExport, WriteBundlesCreatesNumberedFiles)
{
    FlightRecorder fr(smallConfig(), nullptr, nullptr, nullptr);
    fr.trigger(PostmortemTrigger::kOomRescue, 1, 0);
    fr.trigger(PostmortemTrigger::kSwapFull, 2, 0, /*force=*/true);

    std::string dir = testing::TempDir() + "pm_bundles";
    int n = writePostmortemBundles(dir, "test_flight_recorder",
                                   "postmortem-", fr.bundles(),
                                   /*first_index=*/3);
    ASSERT_EQ(n, 2);
    EXPECT_TRUE(
        std::ifstream(dir + "/postmortem-003.json").good());
    EXPECT_TRUE(
        std::ifstream(dir + "/postmortem-004.json").good());
}

// ---------------------------------------------------------------------
// Chaos integration: forced storm bundles, deterministic content
// ---------------------------------------------------------------------

std::string
serializeBundles(const std::vector<PostmortemBundle> &bundles)
{
    std::ostringstream os;
    for (const PostmortemBundle &b : bundles)
        writePostmortemJson(os, "test_flight_recorder", b);
    return os.str();
}

TEST(ChaosPostmortem, StormPhasesForceBundlesDeterministically)
{
    ChaosConfig cc;
    cc.refs_per_phase = 2000;
    cc.postmortem = true;
    cc.phases = {ChaosScenario::kCalm, ChaosScenario::kCollapseStorm};

    ChaosEngine e1(cc);
    ChaosReport r1 = e1.run("compresso");
    ChaosEngine e2(cc);
    ChaosReport r2 = e2.run("compresso");

#ifndef COMPRESSO_OBS_DISABLED
    // At least the forced collapse-storm bundle, and its trigger
    // chain names the storm.
    ASSERT_GE(r1.postmortems.size(), 1u);
    bool names_storm = false;
    for (const PostmortemTriggerEntry &e : r1.postmortems.back().chain)
        if (e.kind == PostmortemTrigger::kChaosStorm)
            names_storm = true;
    EXPECT_TRUE(names_storm);
    EXPECT_EQ(r1.postmortems.back().notes.at("kind"), "compresso");
#endif
    // Byte-identical across runs (trivially so when compiled out).
    EXPECT_EQ(serializeBundles(r1.postmortems),
              serializeBundles(r2.postmortems));
    EXPECT_EQ(r1.postmortems.size(), r2.postmortems.size());
}

TEST(ChaosPostmortem, OffByDefaultKeepsReportEmpty)
{
    ChaosConfig cc;
    cc.refs_per_phase = 1000;
    cc.phases = {ChaosScenario::kCalm};
    ChaosEngine engine(cc);
    ChaosReport r = engine.run("compresso");
    EXPECT_TRUE(r.postmortems.empty());
}

} // namespace
