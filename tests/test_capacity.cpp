/**
 * @file
 * Tests for the memory-capacity impact evaluation (Sec. VI-A) and the
 * compression-ratio timelines feeding it.
 */

#include <gtest/gtest.h>

#include "capacity/capacity_eval.h"
#include "capacity/paging_model.h"

using namespace compresso;

TEST(RatioTimeline, UncompressedIsOne)
{
    RatioTimeline t(profileByName("gcc"), McKind::kUncompressed, false);
    EXPECT_DOUBLE_EQ(t.ratioAt(0), 1.0);
}

TEST(RatioTimeline, CompressoBeatsOne)
{
    RatioTimeline t(profileByName("zeusmp"), McKind::kCompresso, true);
    EXPECT_GT(t.ratioAt(0), 2.0);
}

TEST(RatioTimeline, IncompressibleNearOne)
{
    RatioTimeline t(profileByName("lbm"), McKind::kCompresso, true);
    EXPECT_LT(t.ratioAt(0), 1.6);
}

TEST(RatioTimeline, CompressoBeatsLcp)
{
    for (const char *bench : {"gcc", "zeusmp", "soplex", "Graph500"}) {
        RatioTimeline c(profileByName(bench), McKind::kCompresso, true);
        RatioTimeline l(profileByName(bench), McKind::kLcp, false);
        EXPECT_GE(c.ratioAt(0), l.ratioAt(0) * 0.95) << bench;
    }
}

TEST(RatioTimeline, NoRepackRatchetsDown)
{
    // Phased workload: without repacking the ratio can only decay.
    const WorkloadProfile &p = profileByName("GemsFDTD");
    RatioTimeline norepack(p, McKind::kCompresso, false);
    RatioTimeline repack(p, McKind::kCompresso, true);
    double nr_last = 0, r_last = 0;
    for (unsigned ph = 0; ph < 6; ++ph) {
        nr_last = norepack.ratioAt(ph);
        r_last = repack.ratioAt(ph);
    }
    EXPECT_LE(nr_last, r_last);
}

TEST(PageAllocatedBytes, ZeroPhaseDeterministic)
{
    auto codec = makeCompressor("bpc");
    const WorkloadProfile &p = profileByName("gcc");
    uint32_t a =
        pageAllocatedBytes(p, 3, 0, McKind::kCompresso, *codec);
    uint32_t b =
        pageAllocatedBytes(p, 3, 0, McKind::kCompresso, *codec);
    EXPECT_EQ(a, b);
    EXPECT_LE(a, kPageBytes);
}

TEST(CapacityEval, UnconstrainedHasNoSlowdown)
{
    CapacitySpec spec;
    spec.workloads = {"gcc"};
    spec.kind = McKind::kUncompressed;
    spec.unconstrained = true;
    spec.touches_per_core = 30000;
    CapacityResult r = evalCapacity(spec);
    EXPECT_NEAR(r.progress, 1.0, 0.02);
    EXPECT_FALSE(r.stalled);
}

TEST(CapacityEval, ConstrainedUncompressedSlowsDown)
{
    CapacitySpec spec;
    spec.workloads = {"libquantum"}; // streaming: LRU-hostile
    spec.kind = McKind::kUncompressed;
    spec.mem_frac = 0.7;
    spec.touches_per_core = 30000;
    CapacityResult r = evalCapacity(spec);
    EXPECT_LT(r.progress, 0.95);
}

TEST(CapacityEval, CompressionRelievesPressure)
{
    CapacitySpec spec;
    spec.workloads = {"zeusmp"}; // highly compressible
    spec.mem_frac = 0.7;
    spec.touches_per_core = 30000;

    spec.kind = McKind::kUncompressed;
    CapacityResult uncmp = evalCapacity(spec);
    spec.kind = McKind::kCompresso;
    CapacityResult cmp = evalCapacity(spec);
    EXPECT_GE(cmp.progress, uncmp.progress);
}

TEST(CapacityEval, BoundedSwapSurfacesPressureLoudly)
{
    // An LRU-hostile workload against a tight budget: with the
    // unlimited device nothing escalates, with a bounded one the
    // rejected page-outs / victimless evictions become visible
    // telemetry instead of silent overcommit (DESIGN.md §14).
    CapacitySpec spec;
    spec.workloads = {"libquantum"};
    spec.kind = McKind::kUncompressed;
    spec.mem_frac = 0.5;
    spec.touches_per_core = 30000;

    CapacityResult unlimited = evalCapacity(spec);
    EXPECT_EQ(unlimited.swap_full, 0u);
    EXPECT_EQ(unlimited.budget_overruns, 0u);

    spec.swap_frac = 0.01;
    CapacityResult bounded = evalCapacity(spec);
    EXPECT_GT(bounded.swap_full + bounded.budget_overruns, 0u);
    // A failed eviction leaves the victim resident (over budget,
    // counted), so the bound can only reduce faults, never add any.
    EXPECT_LE(bounded.faults, unlimited.faults);
}

TEST(CapacityEval, SpeedupOrdering)
{
    // Compresso >= LCP >= 1x-ish on a compressible benchmark.
    CapacitySpec spec;
    spec.workloads = {"cactusADM"};
    spec.mem_frac = 0.7;
    spec.touches_per_core = 30000;

    spec.kind = McKind::kCompresso;
    double compresso = capacitySpeedup(spec);
    spec.kind = McKind::kLcp;
    double lcp = capacitySpeedup(spec);
    EXPECT_GE(compresso, lcp * 0.98);
    EXPECT_GE(compresso, 0.99);
}

TEST(CapacityEval, ThrashersStall)
{
    CapacitySpec spec;
    spec.workloads = {"mcf"};
    spec.kind = McKind::kUncompressed;
    spec.mem_frac = 0.5;
    spec.touches_per_core = 30000;
    spec.fault_cost = 200;
    CapacityResult r = evalCapacity(spec);
    EXPECT_LT(r.progress, 0.7);
}

TEST(CapacityEval, MultiCoreReportsPerCoreProgress)
{
    CapacitySpec spec;
    spec.workloads = {"gcc", "zeusmp", "mcf", "lbm"};
    spec.kind = McKind::kCompresso;
    spec.mem_frac = 0.7;
    spec.touches_per_core = 15000;
    CapacityResult r = evalCapacity(spec);
    EXPECT_EQ(r.per_core_progress.size(), 4u);
    for (double p : r.per_core_progress) {
        EXPECT_GT(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
}

TEST(CapacityEval, AverageRatioReported)
{
    CapacitySpec spec;
    spec.workloads = {"zeusmp"};
    spec.kind = McKind::kCompresso;
    spec.touches_per_core = 20000;
    CapacityResult r = evalCapacity(spec);
    EXPECT_GT(r.avg_ratio, 1.5);
}
