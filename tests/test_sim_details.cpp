/**
 * @file
 * Simulator detail tests: the stride prefetcher, co-fetch reporting,
 * zero-access accounting, and cross-system determinism of the shared
 * access streams.
 */

#include <gtest/gtest.h>

#include "sim/runner.h"

using namespace compresso;

namespace {

SystemConfig
config(McKind kind, bool prefetch = true)
{
    RunSpec spec;
    SystemConfig cfg = makeSystemConfig(kind, 1, spec);
    cfg.next_line_prefetch = prefetch;
    return cfg;
}

} // namespace

TEST(Prefetcher, StreamDetectionReducesLoadStalls)
{
    // Same workload with and without the next-line prefetcher: the
    // prefetcher must not slow the system down, and on a workload with
    // a streaming component it should help.
    SystemConfig with = config(McKind::kUncompressed, true);
    SystemConfig without = config(McKind::kUncompressed, false);
    System a(with, {"libquantum"}, 3);
    System b(without, {"libquantum"}, 3);
    a.populate();
    b.populate();
    a.run(20000);
    b.run(20000);
    EXPECT_LE(a.cycles(), b.cycles() * 1.02);
}

TEST(Prefetcher, InsertsIntoLlc)
{
    SystemConfig cfg = config(McKind::kUncompressed, true);
    System sys(cfg, {"libquantum"}, 3);
    sys.populate();
    uint64_t before = sys.hierarchy().l3().stats().get("accesses");
    sys.run(20000);
    EXPECT_GT(sys.hierarchy().l3().stats().get("accesses"), before);
}

TEST(CoFetch, ReportedLinesShareThePage)
{
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(32) << 20;
    CompressoController mc(cfg);
    Line d;
    for (unsigned l = 0; l < kLinesPerPage; ++l) {
        generateLine(DataClass::kDeltaInt, l, d);
        McTrace tr;
        mc.writebackLine(Addr(5) * kPageBytes + l * kLineBytes, d, tr);
    }
    McTrace tr;
    mc.fillLine(Addr(5) * kPageBytes + 8 * kLineBytes, d, tr);
    // 8 B lines: a 64 B burst carries several whole neighbors.
    EXPECT_GE(tr.co_fetched.size(), 1u);
    for (Addr co : tr.co_fetched) {
        EXPECT_EQ(pageOf(co), 5u);
        EXPECT_NE(lineOf(co), 8u);
    }
}

TEST(CoFetch, RawPagesCoFetchNothing)
{
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(32) << 20;
    CompressoController mc(cfg);
    Line d;
    Rng rng(1);
    for (unsigned l = 0; l < kLinesPerPage; ++l) {
        generateLine(DataClass::kRandom, rng.next(), d);
        McTrace tr;
        mc.writebackLine(Addr(6) * kPageBytes + l * kLineBytes, d, tr);
    }
    McTrace tr;
    mc.fillLine(Addr(6) * kPageBytes + 3 * kLineBytes, d, tr);
    EXPECT_TRUE(tr.co_fetched.empty());
}

TEST(System, SameStreamAcrossBackends)
{
    // The access stream must be identical regardless of the memory
    // back end (it only depends on the seed), so cycle comparisons
    // are apples to apples.
    SystemConfig a = config(McKind::kUncompressed);
    SystemConfig b = config(McKind::kCompresso);
    System sa(a, {"astar"}, 11);
    System sb(b, {"astar"}, 11);
    for (int i = 0; i < 10000; ++i) {
        MemRef ra = sa.stream(0).next();
        MemRef rb = sb.stream(0).next();
        ASSERT_EQ(ra.addr, rb.addr);
        ASSERT_EQ(ra.write, rb.write);
    }
}

TEST(System, InstructionCountIndependentOfBackend)
{
    RunSpec spec;
    spec.workloads = {"gobmk"};
    spec.refs_per_core = 10000;
    spec.warmup_refs = 1000;
    spec.kind = McKind::kUncompressed;
    RunResult u = runSystem(spec);
    spec.kind = McKind::kCompresso;
    RunResult c = runSystem(spec);
    EXPECT_EQ(u.insts, c.insts);
}

TEST(System, ZeroAccessFractionTracksProfile)
{
    RunSpec spec;
    spec.workloads = {"leslie3d"}; // paper: 43% zero-line accesses
    spec.refs_per_core = 30000;
    spec.warmup_refs = 3000;
    spec.kind = McKind::kCompresso;
    RunResult r = runSystem(spec);
    EXPECT_GT(r.zero_access_frac, 0.15);

    spec.workloads = {"lbm"}; // nearly no zeros
    RunResult l = runSystem(spec);
    EXPECT_LT(l.zero_access_frac, r.zero_access_frac);
}

TEST(System, MetadataRegionDisjointFromData)
{
    // All metadata ops live above 2^40; all data ops below.
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(32) << 20;
    cfg.mdcache.size_bytes = 1024;
    CompressoController mc(cfg);
    Line d;
    Rng rng(3);
    for (PageNum p = 0; p < 64; ++p) {
        McTrace tr;
        generateLine(DataClass::kFloat, rng.next(), d);
        mc.writebackLine(Addr(p) * kPageBytes, d, tr);
        for (const auto &op : tr.ops) {
            bool is_meta = op.addr >= (Addr(1) << 40);
            // Scattered chunk space tops out at 2^26 chunks * 512 B.
            bool in_data = op.addr < (Addr(1) << 36);
            EXPECT_TRUE(is_meta || in_data) << std::hex << op.addr;
        }
    }
}
