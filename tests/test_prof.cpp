/**
 * @file
 * Host profiler (src/prof): scope nesting and the inclusive/exclusive
 * identity, thread-local collection with merge-on-report, the runtime
 * and compile-time gates, throughput gauges, and the host_profile
 * section of the run-JSON export.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "prof/profiler.h"
#include "sim/run_export.h"
#include "sim/runner.h"

using namespace compresso;

namespace {

/** Busy-wait so nested scopes accumulate measurable, ordered time.
 *  Sleeping would work too but is far noisier on loaded CI hosts. */
void
spinFor(uint64_t ns)
{
    uint64_t t0 = profNowNs();
    while (profNowNs() - t0 < ns) {
    }
}

// ---------------------------------------------------------------------
// Phase table
// ---------------------------------------------------------------------

TEST(ProfPhases, NamesAreStableAndDotted)
{
    EXPECT_STREQ(profPhaseName(ProfPhase::kBdiCompress), "bdi.compress");
    EXPECT_STREQ(profPhaseName(ProfPhase::kMcFill), "mc.fill");
    EXPECT_STREQ(profPhaseName(ProfPhase::kSimRun), "sim.run");
    for (size_t i = 0; i < kProfPhaseCount; ++i) {
        std::string name = profPhaseName(ProfPhase(i));
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name.find('.'), std::string::npos) << name;
    }
}

// ---------------------------------------------------------------------
// ScopedTimer semantics
// ---------------------------------------------------------------------

TEST(Profiler, NoActiveProfilerMeansNoCollection)
{
    // No ProfScope: timers must be inert (and must not crash).
    {
        ScopedTimer t(ProfPhase::kMcFill);
        spinFor(1000);
    }
    Profiler prof;
    EXPECT_TRUE(prof.snapshot().phases.empty());
}

TEST(Profiler, NestedScopesSplitInclusiveAndExclusive)
{
    Profiler prof;
    {
        ProfScope scope(&prof);
        ScopedTimer outer(ProfPhase::kMcFill);
        spinFor(200000);
        {
            ScopedTimer inner(ProfPhase::kBdiCompress);
            spinFor(200000);
        }
        spinFor(200000);
    }
    ProfSnapshot snap = prof.snapshot();
    ASSERT_EQ(snap.phases.count("mc.fill"), 1u);
    ASSERT_EQ(snap.phases.count("bdi.compress"), 1u);
    const auto &fill = snap.phases.at("mc.fill");
    const auto &bdi = snap.phases.at("bdi.compress");
    EXPECT_EQ(fill.calls, 1u);
    EXPECT_EQ(bdi.calls, 1u);

    // The child's whole inclusive time is the parent's child time:
    // excl(parent) + incl(child) == incl(parent), exactly.
    EXPECT_EQ(fill.excl_ns + bdi.incl_ns, fill.incl_ns);
    // A leaf has no children.
    EXPECT_EQ(bdi.excl_ns, bdi.incl_ns);
    // And the parent demonstrably lost its child's time.
    EXPECT_LT(fill.excl_ns, fill.incl_ns);
    EXPECT_GE(bdi.incl_ns, 200000u);
}

TEST(Profiler, SiblingScopesBothChargeTheParent)
{
    Profiler prof;
    {
        ProfScope scope(&prof);
        ScopedTimer outer(ProfPhase::kSimRun);
        {
            ScopedTimer a(ProfPhase::kMcFill);
            spinFor(100000);
        }
        {
            ScopedTimer b(ProfPhase::kMcWriteback);
            spinFor(100000);
        }
    }
    ProfSnapshot snap = prof.snapshot();
    const auto &run = snap.phases.at("sim.run");
    uint64_t children = snap.phases.at("mc.fill").incl_ns +
                        snap.phases.at("mc.writeback").incl_ns;
    EXPECT_EQ(run.excl_ns + children, run.incl_ns);
}

TEST(Profiler, SamePhaseNestingKeepsExclusiveExact)
{
    Profiler prof;
    {
        ProfScope scope(&prof);
        ScopedTimer outer(ProfPhase::kMcRepack);
        spinFor(100000);
        {
            // Recursion: inclusive double-counts (conventional), but
            // exclusive still partitions the real time.
            ScopedTimer inner(ProfPhase::kMcRepack);
            spinFor(100000);
        }
    }
    ProfSnapshot snap = prof.snapshot();
    const auto &repack = snap.phases.at("mc.repack");
    EXPECT_EQ(repack.calls, 2u);
    EXPECT_GT(repack.incl_ns, repack.excl_ns);
    // Exclusive equals the true elapsed time: outer excl + inner excl
    // covers the outer scope's real span once.
    EXPECT_GE(repack.excl_ns, 200000u);
    EXPECT_LT(repack.excl_ns, repack.incl_ns);
}

TEST(Profiler, ResetClearsTotalsAndGauges)
{
    Profiler prof;
    {
        ProfScope scope(&prof);
        ScopedTimer t(ProfPhase::kMcFill);
        spinFor(1000);
    }
    prof.addWallNs(500);
    prof.addWork(100);
    ASSERT_FALSE(prof.snapshot().phases.empty());

    prof.reset();
    ProfSnapshot snap = prof.snapshot();
    EXPECT_TRUE(snap.phases.empty());
    EXPECT_EQ(snap.wall_ns, 0u);
    EXPECT_EQ(snap.sim_refs, 0u);
    // The thread's state survives a reset and keeps collecting.
    {
        ProfScope scope(&prof);
        ScopedTimer t(ProfPhase::kMcFill);
        spinFor(1000);
    }
    EXPECT_EQ(prof.snapshot().phases.count("mc.fill"), 1u);
    EXPECT_EQ(prof.snapshot().threads, 1u);
}

// ---------------------------------------------------------------------
// Thread-local collection, merge-on-report
// ---------------------------------------------------------------------

TEST(Profiler, MergesQuiescedWorkerThreadsDeterministically)
{
    constexpr unsigned kThreads = 4;
    constexpr unsigned kCallsPerThread = 50;
    Profiler prof;
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < kThreads; ++w) {
        workers.emplace_back([&prof] {
            ProfScope scope(&prof);
            for (unsigned i = 0; i < kCallsPerThread; ++i) {
                ScopedTimer t(ProfPhase::kDramAccess);
                spinFor(1000);
            }
        });
    }
    for (auto &t : workers)
        t.join();

    ProfSnapshot snap = prof.snapshot();
    EXPECT_EQ(snap.threads, kThreads);
    ASSERT_EQ(snap.phases.count("dram.access"), 1u);
    const auto &dram = snap.phases.at("dram.access");
    EXPECT_EQ(dram.calls, uint64_t(kThreads) * kCallsPerThread);
    EXPECT_GE(dram.incl_ns, dram.excl_ns);

    // Merging is a pure reduction: snapshotting again changes nothing.
    ProfSnapshot again = prof.snapshot();
    EXPECT_EQ(again.phases.at("dram.access").calls, dram.calls);
    EXPECT_EQ(again.phases.at("dram.access").incl_ns, dram.incl_ns);
}

TEST(Profiler, SameThreadReusesItsState)
{
    Profiler prof;
    {
        ProfScope scope(&prof);
        ScopedTimer t(ProfPhase::kMcFill);
    }
    {
        ProfScope scope(&prof);
        ScopedTimer t(ProfPhase::kMcFill);
    }
    ProfSnapshot snap = prof.snapshot();
    EXPECT_EQ(snap.threads, 1u);
    EXPECT_EQ(snap.phases.at("mc.fill").calls, 2u);
}

TEST(Profiler, ProfScopeRestoresPreviousActivation)
{
    Profiler a, b;
    {
        ProfScope sa(&a);
        EXPECT_EQ(currentProfiler(), &a);
        {
            ProfScope sb(&b);
            EXPECT_EQ(currentProfiler(), &b);
            ScopedTimer t(ProfPhase::kMcFill);
        }
        EXPECT_EQ(currentProfiler(), &a);
        {
            ProfScope off(nullptr);
            EXPECT_EQ(currentProfiler(), nullptr);
            ScopedTimer t(ProfPhase::kMcWriteback);
        }
    }
    EXPECT_EQ(currentProfiler(), nullptr);
    EXPECT_TRUE(a.snapshot().phases.empty());
    EXPECT_EQ(b.snapshot().phases.at("mc.fill").calls, 1u);
    EXPECT_EQ(b.snapshot().phases.count("mc.writeback"), 0u);
}

// ---------------------------------------------------------------------
// Gauges
// ---------------------------------------------------------------------

TEST(Profiler, ThroughputGaugesDeriveFromTotals)
{
    Profiler prof;
    prof.addWallNs(2000000000); // 2 s
    prof.addWork(1000000);      // 1M refs
    ProfSnapshot snap = prof.snapshot();
    EXPECT_EQ(snap.wall_ns, 2000000000u);
    EXPECT_EQ(snap.sim_refs, 1000000u);
    EXPECT_DOUBLE_EQ(snap.refs_per_host_sec, 500000.0);
    EXPECT_DOUBLE_EQ(snap.host_ns_per_ref, 2000.0);
}

TEST(Profiler, GaugesZeroWhenNothingMeasured)
{
    Profiler prof;
    ProfSnapshot snap = prof.snapshot();
    EXPECT_DOUBLE_EQ(snap.refs_per_host_sec, 0.0);
    EXPECT_DOUBLE_EQ(snap.host_ns_per_ref, 0.0);
}

// ---------------------------------------------------------------------
// Compile-time gate
// ---------------------------------------------------------------------

TEST(Profiler, CompileTimeGateRemovesSites)
{
#ifdef COMPRESSO_PROF_DISABLED
    // The macro must expand to nothing that collects: run a scope
    // under an active profiler and observe zero phases.
    Profiler prof;
    {
        ProfScope scope(&prof);
        CPR_PROF_SCOPE(ProfPhase::kMcFill);
        spinFor(1000);
    }
    EXPECT_TRUE(prof.snapshot().phases.empty());
#else
    Profiler prof;
    {
        ProfScope scope(&prof);
        CPR_PROF_SCOPE(ProfPhase::kMcFill);
        spinFor(1000);
    }
    EXPECT_EQ(prof.snapshot().phases.count("mc.fill"), 1u);
#endif
}

// ---------------------------------------------------------------------
// Integration: runner + export
// ---------------------------------------------------------------------

RunSpec
smallSpec()
{
    RunSpec spec;
    spec.kind = McKind::kCompresso;
    spec.workloads = {"gcc"};
    spec.refs_per_core = 6000;
    spec.warmup_refs = 600;
    return spec;
}

TEST(ProfIntegration, ProfiledRunReportsPhasesAndGauges)
{
    RunSpec spec = smallSpec();
    spec.prof.enabled = true;
    RunResult r = runSystem(spec);

    EXPECT_TRUE(r.prof.enabled);
    EXPECT_EQ(r.prof.threads, 1u);
    EXPECT_GT(r.prof.wall_ns, 0u);
    EXPECT_EQ(r.prof.sim_refs, spec.refs_per_core);
    EXPECT_GT(r.prof.refs_per_host_sec, 0.0);
    EXPECT_GT(r.prof.host_ns_per_ref, 0.0);

#ifndef COMPRESSO_PROF_DISABLED
    // The sim loop and the controller hot paths must all be covered.
    for (const char *phase : {"sim.populate", "sim.run", "mc.fill",
                              "mc.writeback", "mdcache.access",
                              "dram.access"}) {
        EXPECT_EQ(r.prof.phases.count(phase), 1u) << phase;
    }
    // Everything under sim.run nests inside it.
    const auto &run = r.prof.phases.at("sim.run");
    EXPECT_EQ(run.calls, 2u); // warmup section + measured section
    EXPECT_GE(run.incl_ns, r.prof.phases.at("mc.fill").incl_ns);
#endif
}

TEST(ProfIntegration, DisabledProfilerLeavesResultEmpty)
{
    RunResult r = runSystem(smallSpec());
    EXPECT_FALSE(r.prof.enabled);
    EXPECT_TRUE(r.prof.phases.empty());
    EXPECT_EQ(r.prof.wall_ns, 0u);
}

TEST(ProfIntegration, RunJsonCarriesHostProfile)
{
    RunSpec spec = smallSpec();
    spec.prof.enabled = true;
    RunResult r = runSystem(spec);

    std::ostringstream os;
    writeRunsJson(os, "test_prof", {r});
    std::string doc = os.str();
    EXPECT_NE(doc.find("\"compresso-run-v3\""), std::string::npos);
    EXPECT_NE(doc.find("\"host_profile\""), std::string::npos);
    EXPECT_NE(doc.find("\"host_ns_per_ref\""), std::string::npos);
#ifndef COMPRESSO_PROF_DISABLED
    EXPECT_NE(doc.find("\"sim.run\""), std::string::npos);
    EXPECT_NE(doc.find("\"incl_ns\""), std::string::npos);
#endif
}

TEST(ProfIntegration, RunSinkProfFlagActivatesProfiler)
{
    const char *argv[] = {"tool", "--prof"};
    RunSink sink;
    sink.init(2, const_cast<char **>(argv), "test_prof");
    EXPECT_TRUE(sink.profRequested());
    EXPECT_TRUE(sink.extraArgs().empty());

    RunSpec spec = smallSpec();
    sink.apply(spec);
    EXPECT_TRUE(spec.prof.enabled);
    // --prof alone must not drag observability in.
    EXPECT_FALSE(spec.obs.enabled);
}

} // namespace
