/**
 * @file
 * Campaign engine tests: the serial-vs-parallel determinism guarantee
 * (jobs=1 and jobs=8 produce bit-identical per-job simulated metrics),
 * per-job seed derivation, retry / fail-fast / soft-timeout policy,
 * mid-campaign failure under parallel execution, grid expansion, and
 * the shape of the exported campaign document.
 */

#include <chrono>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/campaign.h"
#include "exec/campaign_export.h"

using namespace compresso;

namespace {

RunSpec
tinySpec(McKind kind, const std::string &workload, uint64_t seed = 1)
{
    RunSpec spec;
    spec.kind = kind;
    spec.workloads = {workload};
    spec.refs_per_core = 2000;
    spec.warmup_refs = 200;
    spec.seed = seed;
    return spec;
}

Campaign
smallRunCampaign()
{
    Campaign c("determinism", /*campaign_seed=*/42);
    c.add("compresso/mcf", tinySpec(McKind::kCompresso, "mcf"));
    c.add("compresso/omnetpp", tinySpec(McKind::kCompresso, "omnetpp"));
    c.add("uncompressed/mcf", tinySpec(McKind::kUncompressed, "mcf"));
    c.add("lcp/mcf", tinySpec(McKind::kLcp, "mcf"));
    return c;
}

CampaignPolicy
quietPolicy(unsigned jobs)
{
    CampaignPolicy policy;
    policy.jobs = jobs;
    policy.progress = ProgressMode::kOff;
    return policy;
}

/** Everything scheduling-independent about a run must match exactly. */
void
expectSameSimulatedMetrics(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.perf, b.perf);
    EXPECT_EQ(a.comp_ratio, b.comp_ratio);
    EXPECT_EQ(a.effective_ratio, b.effective_ratio);
    EXPECT_EQ(a.extra_total, b.extra_total);
    EXPECT_EQ(a.md_hit_rate, b.md_hit_rate);
    EXPECT_EQ(a.audit_violations, b.audit_violations);
    EXPECT_EQ(a.mc_stats.counters(), b.mc_stats.counters());
    EXPECT_EQ(a.dram_stats.counters(), b.dram_stats.counters());
}

} // namespace

TEST(Campaign, SerialAndParallelRunsAreBitIdentical)
{
    Campaign c = smallRunCampaign();
    CampaignResult serial = c.run(quietPolicy(1));
    CampaignResult parallel = c.run(quietPolicy(8));

    ASSERT_EQ(serial.records.size(), c.size());
    ASSERT_EQ(parallel.records.size(), c.size());
    EXPECT_EQ(serial.pool_jobs, 1u);
    EXPECT_EQ(parallel.pool_jobs, 8u);
    EXPECT_TRUE(serial.allOk());
    EXPECT_TRUE(parallel.allOk());

    for (size_t i = 0; i < c.size(); ++i) {
        const JobRecord &s = serial.records[i];
        const JobRecord &p = parallel.records[i];
        EXPECT_EQ(s.label, p.label);
        EXPECT_EQ(s.seed, p.seed);
        ASSERT_TRUE(s.payload.has_run);
        ASSERT_TRUE(p.payload.has_run);
        expectSameSimulatedMetrics(s.run(), p.run());
    }

    // The merged aggregates are reductions of identical inputs.
    ASSERT_EQ(serial.aggregates.size(), parallel.aggregates.size());
    for (const auto &[kind, agg] : serial.aggregates) {
        const auto &other = parallel.aggregates.at(kind);
        EXPECT_EQ(agg.jobs, other.jobs);
        EXPECT_EQ(agg.mc_stats.counters(), other.mc_stats.counters());
        EXPECT_EQ(agg.dram_stats.counters(),
                  other.dram_stats.counters());
    }
}

TEST(Campaign, DerivedSeedsFollowCombineAndIgnoreScheduling)
{
    Campaign c("seeds", /*campaign_seed=*/7);
    for (int i = 0; i < 16; ++i)
        c.add("job" + std::to_string(i), [](const JobContext &ctx) {
            JobPayload p;
            p.values["seed_lo32"] = double(ctx.seed & 0xffffffffu);
            return p;
        });

    CampaignResult serial = c.run(quietPolicy(1));
    CampaignResult parallel = c.run(quietPolicy(8));
    std::set<uint64_t> unique;
    for (uint32_t i = 0; i < 16; ++i) {
        EXPECT_EQ(serial.records[i].seed, Rng::combine(7, i));
        EXPECT_EQ(serial.records[i].seed, parallel.records[i].seed);
        EXPECT_EQ(serial.records[i].payload.values.at("seed_lo32"),
                  parallel.records[i].payload.values.at("seed_lo32"));
        unique.insert(serial.records[i].seed);
    }
    EXPECT_EQ(unique.size(), 16u); // streams must not collide
}

TEST(Campaign, RetrySucceedsOnSecondAttempt)
{
    Campaign c("retry");
    c.add("flaky", [](const JobContext &ctx) {
        if (ctx.attempt == 0)
            throw std::runtime_error("transient");
        JobPayload p;
        p.values["ok"] = 1;
        return p;
    });
    CampaignPolicy policy = quietPolicy(1);
    policy.max_attempts = 2;
    CampaignResult res = c.run(policy);
    EXPECT_TRUE(res.allOk());
    EXPECT_EQ(res.records[0].attempts, 2u);
    EXPECT_EQ(res.retries, 1u);
    EXPECT_EQ(res.records[0].payload.values.at("ok"), 1);
}

TEST(Campaign, ExhaustedRetriesRecordFailureWithoutAborting)
{
    Campaign c("failures");
    c.add("bad", [](const JobContext &) -> JobPayload {
        throw std::runtime_error("always broken");
    });
    c.add("good", [](const JobContext &) {
        JobPayload p;
        p.values["x"] = 3;
        return p;
    });
    CampaignPolicy policy = quietPolicy(1);
    policy.max_attempts = 3;
    CampaignResult res = c.run(policy);

    EXPECT_FALSE(res.allOk());
    EXPECT_EQ(res.failed, 1u);
    EXPECT_EQ(res.ok, 1u);
    EXPECT_EQ(res.records[0].status, JobStatus::kFailed);
    EXPECT_EQ(res.records[0].attempts, 3u);
    EXPECT_EQ(res.records[0].error, "always broken");
    EXPECT_TRUE(res.records[1].ok());
    EXPECT_EQ(res.retries, 2u);
}

TEST(Campaign, RetryBackoffSchedulesAreBitIdenticalAtEqualSeeds)
{
    CampaignPolicy policy;
    policy.backoff_base_ms = 10;
    policy.backoff_factor = 2.0;
    policy.backoff_max_ms = 2000;
    policy.backoff_jitter = 0.25;

    // The schedule is a pure function of (policy, job seed, attempt):
    // recomputing it must be bit-identical, run to run and call to
    // call — the jitter comes from the job's seed stream, not from
    // host entropy.
    const uint64_t seed = Rng::combine(99, 7);
    for (unsigned attempt = 1; attempt <= 8; ++attempt)
        EXPECT_EQ(retryBackoffNs(policy, seed, attempt),
                  retryBackoffNs(policy, seed, attempt));

    // Different job seeds de-correlate (jitter differs)...
    EXPECT_NE(retryBackoffNs(policy, Rng::combine(99, 7), 1),
              retryBackoffNs(policy, Rng::combine(99, 8), 1));
    // ...while the exponential envelope holds: each step sits in
    // [base * 2^(k-1), base * 2^(k-1) * (1 + jitter)], capped.
    uint64_t prev = 0;
    for (unsigned attempt = 1; attempt <= 6; ++attempt) {
        uint64_t ns = retryBackoffNs(policy, seed, attempt);
        uint64_t lo = 10000000ull << (attempt - 1);
        EXPECT_GE(ns, lo);
        EXPECT_LE(ns, uint64_t(double(lo) * 1.25));
        EXPECT_GT(ns, prev);
        prev = ns;
    }
    // The cap bounds the tail (with jitter headroom on top).
    uint64_t capped = retryBackoffNs(policy, seed, 30);
    EXPECT_LE(capped, uint64_t(2000 * 1.25) * 1000000ull);
}

TEST(Campaign, BackoffDefaultsToImmediateRetry)
{
    CampaignPolicy policy; // backoff_base_ms == 0: historic behavior
    EXPECT_EQ(retryBackoffNs(policy, 123, 1), 0u);
    EXPECT_EQ(retryBackoffNs(policy, 123, 5), 0u);
    // Attempt 0 (the first try) never waits, whatever the policy.
    policy.backoff_base_ms = 50;
    EXPECT_EQ(retryBackoffNs(policy, 123, 0), 0u);
}

TEST(Campaign, BackoffDelaysFlakyRetriesWithoutChangingResults)
{
    Campaign c("backoff-retry");
    c.add("flaky", [](const JobContext &ctx) {
        if (ctx.attempt == 0)
            throw std::runtime_error("transient");
        JobPayload p;
        p.values["ok"] = 1;
        return p;
    });
    CampaignPolicy policy = quietPolicy(1);
    policy.max_attempts = 2;
    policy.backoff_base_ms = 1; // keep the test fast
    policy.backoff_jitter = 0;
    CampaignResult res = c.run(policy);
    EXPECT_TRUE(res.allOk());
    EXPECT_EQ(res.records[0].attempts, 2u);
    EXPECT_EQ(res.retries, 1u);
}

TEST(Campaign, FailFastSkipsJobsNotYetStarted)
{
    Campaign c("failfast");
    c.add("boom", [](const JobContext &) -> JobPayload {
        throw std::runtime_error("fatal");
    });
    for (int i = 0; i < 4; ++i)
        c.add("later" + std::to_string(i), [](const JobContext &) {
            return JobPayload{};
        });
    CampaignPolicy policy = quietPolicy(1); // serial: order guaranteed
    policy.max_attempts = 1;
    policy.fail_fast = true;
    CampaignResult res = c.run(policy);

    EXPECT_EQ(res.failed, 1u);
    EXPECT_EQ(res.skipped, 4u);
    for (size_t i = 1; i < res.records.size(); ++i)
        EXPECT_EQ(res.records[i].status, JobStatus::kSkipped);
}

TEST(Campaign, SoftTimeoutFlagsOverdueJobAndDiscardsItsResult)
{
    Campaign c("timeouts");
    c.add("slow", [](const JobContext &ctx) {
        // Cooperative: spin until the watchdog (reporter thread, 250ms
        // period) flags us, with a hard bound so a broken watchdog
        // cannot hang the suite.
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
        while (!ctx.cancelled() &&
               std::chrono::steady_clock::now() < deadline)
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        JobPayload p;
        p.values["late"] = 1; // must be discarded
        return p;
    });
    CampaignPolicy policy = quietPolicy(1);
    policy.timeout_ms = 10;
    policy.max_attempts = 2; // a timeout must not be retried
    CampaignResult res = c.run(policy);

    EXPECT_EQ(res.timeout, 1u);
    EXPECT_EQ(res.records[0].status, JobStatus::kTimeout);
    EXPECT_EQ(res.records[0].attempts, 1u);
    EXPECT_TRUE(res.records[0].payload.values.empty());
}

TEST(Campaign, MidCampaignFailuresUnderParallelExecution)
{
    // The tsan-preset stress case: a wide flood of tiny jobs where
    // every 7th throws, executed by 8 workers.
    Campaign c("stress");
    constexpr uint32_t kJobs = 64;
    for (uint32_t i = 0; i < kJobs; ++i)
        c.add("j" + std::to_string(i), [i](const JobContext &) {
            if (i % 7 == 0)
                throw std::runtime_error("unlucky");
            JobPayload p;
            p.values["i"] = double(i);
            return p;
        });
    CampaignPolicy policy = quietPolicy(8);
    policy.max_attempts = 2;
    CampaignResult res = c.run(policy);

    uint32_t expect_failed = (kJobs + 6) / 7;
    EXPECT_EQ(res.failed, expect_failed);
    EXPECT_EQ(res.ok, kJobs - expect_failed);
    EXPECT_EQ(res.retries, uint64_t(expect_failed)); // one retry each
    for (uint32_t i = 0; i < kJobs; ++i) {
        if (i % 7 == 0)
            EXPECT_EQ(res.records[i].status, JobStatus::kFailed);
        else
            EXPECT_EQ(res.records[i].payload.values.at("i"), double(i));
    }
}

TEST(Campaign, AggregatesMergePerControllerKind)
{
    Campaign c("agg");
    c.add("a", tinySpec(McKind::kCompresso, "mcf"));
    c.add("b", tinySpec(McKind::kCompresso, "mcf"));
    c.add("u", tinySpec(McKind::kUncompressed, "mcf"));
    CampaignResult res = c.run(quietPolicy(1));
    ASSERT_TRUE(res.allOk());

    ASSERT_EQ(res.aggregates.count("compresso"), 1u);
    ASSERT_EQ(res.aggregates.count("uncompressed"), 1u);
    const auto &agg = res.aggregates.at("compresso");
    EXPECT_EQ(agg.jobs, 2u);
    // Identical specs: every merged counter is exactly twice the
    // single-run value, and the checked merge must not have fallen
    // back to the union path.
    EXPECT_EQ(agg.key_mismatches, 0u);
    const StatGroup &one = res.records[0].run().mc_stats;
    for (const auto &[key, val] : agg.mc_stats.counters())
        EXPECT_EQ(val, 2 * one.counters().at(key)) << key;
}

TEST(CampaignGrid, ExpandsRowMajorWithJoinedLabels)
{
    CampaignGrid grid(tinySpec(McKind::kCompresso, "mcf"));
    GridAxis &wl = grid.axis("workload");
    wl.values.push_back(
        {"mcf", [](RunSpec &s) { s.workloads = {"mcf"}; }});
    wl.values.push_back(
        {"omnetpp", [](RunSpec &s) { s.workloads = {"omnetpp"}; }});
    grid.value("sizing", "fixed", [](RunSpec &s) {
        s.compresso.page_sizing = PageSizing::kChunked512;
    });
    grid.value("sizing", "variable", [](RunSpec &s) {
        s.compresso.page_sizing = PageSizing::kVariable4;
    });
    grid.value("sizing", "v3", nullptr);
    EXPECT_EQ(grid.points(), 6u);

    Campaign c("grid");
    uint32_t first = grid.addTo(c);
    EXPECT_EQ(first, 0u);
    ASSERT_EQ(c.size(), 6u);

    CampaignResult res = c.run(quietPolicy(1));
    const char *expected[] = {
        "mcf/fixed",     "mcf/variable",     "mcf/v3",
        "omnetpp/fixed", "omnetpp/variable", "omnetpp/v3",
    };
    for (size_t i = 0; i < 6; ++i)
        EXPECT_EQ(res.records[i].label, expected[i]);
}

TEST(CampaignExport, DocumentHasSchemaJobsAndAggregates)
{
    Campaign c("export", 5);
    c.add("run/mcf", tinySpec(McKind::kCompresso, "mcf"));
    c.add("custom", [](const JobContext &) {
        JobPayload p;
        p.values["speedup"] = 1.25;
        return p;
    });
    c.add("broken", [](const JobContext &) -> JobPayload {
        throw std::runtime_error("nope");
    });
    CampaignPolicy policy = quietPolicy(2);
    policy.max_attempts = 1;
    CampaignResult res = c.run(policy);

    std::ostringstream os;
    writeCampaignJson(os, "test_tool", res);
    const std::string doc = os.str();

    EXPECT_NE(doc.find("\"schema\":\"compresso-campaign-v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"tool\":\"test_tool\""), std::string::npos);
    EXPECT_NE(doc.find("\"campaign\":\"export\""), std::string::npos);
    EXPECT_NE(doc.find("\"campaign_seed\":5"), std::string::npos);
    EXPECT_NE(doc.find("\"environment\""), std::string::npos);
    EXPECT_NE(doc.find("\"summary\""), std::string::npos);
    EXPECT_NE(doc.find("\"jobs\""), std::string::npos);
    EXPECT_NE(doc.find("\"label\":\"run/mcf\""), std::string::npos);
    EXPECT_NE(doc.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(doc.find("\"status\":\"failed\""), std::string::npos);
    EXPECT_NE(doc.find("\"error\":\"nope\""), std::string::npos);
    EXPECT_NE(doc.find("\"speedup\":1.25"), std::string::npos);
    EXPECT_NE(doc.find("\"aggregates\""), std::string::npos);
    EXPECT_NE(doc.find("\"mc_stats\""), std::string::npos);

    // Same campaign re-serialized is byte-identical apart from the
    // host-timing fields; with those zeroed the documents must match.
    std::ostringstream os2;
    CampaignResult copy = res;
    copy.wall_ns = res.wall_ns;
    writeCampaignJson(os2, "test_tool", copy);
    EXPECT_EQ(doc, os2.str());
}

TEST(CampaignExport, StatusNamesAreStable)
{
    EXPECT_STREQ(jobStatusName(JobStatus::kOk), "ok");
    EXPECT_STREQ(jobStatusName(JobStatus::kFailed), "failed");
    EXPECT_STREQ(jobStatusName(JobStatus::kTimeout), "timeout");
    EXPECT_STREQ(jobStatusName(JobStatus::kSkipped), "skipped");
}
