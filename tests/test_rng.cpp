/**
 * @file
 * Tests for the deterministic RNG every experiment depends on.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

using namespace compresso;

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (uint64_t bound : {uint64_t(1), uint64_t(2), uint64_t(7),
                           uint64_t(64), uint64_t(1000),
                           uint64_t(1) << 20}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 400; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, MixIsOrderSensitive)
{
    EXPECT_NE(Rng::mix(1, 2, 3), Rng::mix(3, 2, 1));
    EXPECT_NE(Rng::mix(1, 2), Rng::mix(2, 1));
    EXPECT_EQ(Rng::mix(5, 6, 7), Rng::mix(5, 6, 7));
}

TEST(Rng, CombineIsDeterministic)
{
    EXPECT_EQ(Rng::combine(42, 7), Rng::combine(42, 7));
}

TEST(Rng, CombineSeparatesStreams)
{
    // Per-job seeds of one campaign must not collide for any plausible
    // job count, and the derived stream must differ from the root.
    std::set<uint64_t> seen;
    for (uint64_t job = 0; job < 4096; ++job) {
        uint64_t s = Rng::combine(1, job);
        EXPECT_NE(s, 1u);
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 4096u);
}

TEST(Rng, CombineSeparatesCampaigns)
{
    // The same job index under different campaign seeds diverges too.
    std::set<uint64_t> seen;
    for (uint64_t seed = 0; seed < 1024; ++seed)
        seen.insert(Rng::combine(seed, 3));
    EXPECT_EQ(seen.size(), 1024u);
}

TEST(Rng, CombineOperandsHaveFixedRoles)
{
    EXPECT_NE(Rng::combine(2, 9), Rng::combine(9, 2));
}

TEST(Rng, ReseedResets)
{
    Rng rng(17);
    uint64_t first = rng.next();
    rng.next();
    rng.reseed(17);
    EXPECT_EQ(rng.next(), first);
}

TEST(Rng, SkewedStaysInRange)
{
    Rng rng(19);
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.skewed(10, 50);
        ASSERT_GE(v, 10u);
        ASSERT_LE(v, 50u);
    }
}
