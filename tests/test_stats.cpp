/**
 * @file
 * Tests for the stats substrate.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.h"

using namespace compresso;

TEST(StatGroup, DefaultsToZero)
{
    StatGroup g("g");
    EXPECT_EQ(g.get("nothing"), 0u);
}

TEST(StatGroup, IncrementAndRead)
{
    StatGroup g("g");
    g["hits"] += 3;
    ++g["hits"];
    EXPECT_EQ(g.get("hits"), 4u);
}

TEST(StatGroup, RatioHandlesZeroDenominator)
{
    StatGroup g("g");
    g["hits"] = 5;
    EXPECT_DOUBLE_EQ(g.ratio("hits", "accesses"), 0.0);
    g["accesses"] = 10;
    EXPECT_DOUBLE_EQ(g.ratio("hits", "accesses"), 0.5);
}

TEST(StatGroup, MergeSums)
{
    StatGroup a("a"), b("b");
    a["x"] = 1;
    b["x"] = 2;
    b["y"] = 3;
    a.merge(b);
    EXPECT_EQ(a.get("x"), 3u);
    EXPECT_EQ(a.get("y"), 3u);
}

TEST(StatGroup, MergeCheckedSumsIdenticalKeySets)
{
    StatGroup a("a"), b("b");
    a["x"] = 1;
    a["y"] = 10;
    b["x"] = 2;
    b["y"] = 20;
    EXPECT_TRUE(a.mergeChecked(b));
    EXPECT_EQ(a.get("x"), 3u);
    EXPECT_EQ(a.get("y"), 30u);
}

TEST(StatGroup, MergeCheckedAdoptsIntoEmptyGroup)
{
    StatGroup acc("acc"), b("b");
    b["x"] = 5;
    b["y"] = 7;
    EXPECT_TRUE(acc.mergeChecked(b));
    EXPECT_EQ(acc.get("x"), 5u);
    EXPECT_EQ(acc.get("y"), 7u);
}

TEST(StatGroup, MergeCheckedRejectsMissingKey)
{
    StatGroup a("a"), b("b");
    a["x"] = 1;
    b["x"] = 2;
    b["y"] = 3;
    std::string bad;
    EXPECT_FALSE(a.mergeChecked(b, &bad));
    EXPECT_EQ(bad, "y");
    // A failed merge leaves the accumulator untouched.
    EXPECT_EQ(a.get("x"), 1u);
    EXPECT_EQ(a.get("y"), 0u);
}

TEST(StatGroup, MergeCheckedRejectsExtraKey)
{
    StatGroup a("a"), b("b");
    a["x"] = 1;
    a["y"] = 2;
    b["x"] = 4;
    std::string bad;
    EXPECT_FALSE(a.mergeChecked(b, &bad));
    EXPECT_EQ(bad, "y");
    EXPECT_EQ(a.get("x"), 1u);
    EXPECT_EQ(a.get("y"), 2u);
}

TEST(StatGroup, MergeCheckedReportsFirstDivergentKey)
{
    StatGroup a("a"), b("b");
    a["alpha"] = 1;
    a["mid"] = 2;
    b["beta"] = 1;
    b["mid"] = 2;
    std::string bad;
    EXPECT_FALSE(a.mergeChecked(b, &bad));
    EXPECT_EQ(bad, "alpha"); // lexicographically first divergence
}

TEST(StatGroup, MergeCheckedBothEmptyIsFine)
{
    StatGroup a("a"), b("b");
    EXPECT_TRUE(a.mergeChecked(b));
    EXPECT_TRUE(a.counters().empty());
}

TEST(StatGroup, ResetClears)
{
    StatGroup g("g");
    g["x"] = 9;
    g.reset();
    EXPECT_EQ(g.get("x"), 0u);
}

TEST(StatGroup, DumpIncludesGroupName)
{
    StatGroup g("mc");
    g["fills"] = 7;
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("mc.fills"), std::string::npos);
    EXPECT_NE(os.str().find("7"), std::string::npos);
}
