/**
 * @file
 * Tests for the stats substrate.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.h"

using namespace compresso;

TEST(StatGroup, DefaultsToZero)
{
    StatGroup g("g");
    EXPECT_EQ(g.get("nothing"), 0u);
}

TEST(StatGroup, IncrementAndRead)
{
    StatGroup g("g");
    g["hits"] += 3;
    ++g["hits"];
    EXPECT_EQ(g.get("hits"), 4u);
}

TEST(StatGroup, RatioHandlesZeroDenominator)
{
    StatGroup g("g");
    g["hits"] = 5;
    EXPECT_DOUBLE_EQ(g.ratio("hits", "accesses"), 0.0);
    g["accesses"] = 10;
    EXPECT_DOUBLE_EQ(g.ratio("hits", "accesses"), 0.5);
}

TEST(StatGroup, MergeSums)
{
    StatGroup a("a"), b("b");
    a["x"] = 1;
    b["x"] = 2;
    b["y"] = 3;
    a.merge(b);
    EXPECT_EQ(a.get("x"), 3u);
    EXPECT_EQ(a.get("y"), 3u);
}

TEST(StatGroup, ResetClears)
{
    StatGroup g("g");
    g["x"] = 9;
    g.reset();
    EXPECT_EQ(g.get("x"), 0u);
}

TEST(StatGroup, DumpIncludesGroupName)
{
    StatGroup g("mc");
    g["fills"] = 7;
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("mc.fills"), std::string::npos);
    EXPECT_NE(os.str().find("7"), std::string::npos);
}
