/**
 * @file
 * Tests for the page-overflow predictor (Sec. IV-B2, Fig. 5b).
 */

#include <gtest/gtest.h>

#include "core/predictor.h"

using namespace compresso;

TEST(Predictor, LocalCounterSaturatesAtThree)
{
    PageOverflowPredictor p;
    uint8_t counter = 0;
    for (int i = 0; i < 10; ++i)
        p.onLineOverflow(&counter);
    EXPECT_EQ(counter, 3);
}

TEST(Predictor, LocalCounterDecrementsOnUnderflow)
{
    PageOverflowPredictor p;
    uint8_t counter = 2;
    p.onLineUnderflow(&counter);
    EXPECT_EQ(counter, 1);
    p.onLineUnderflow(&counter);
    p.onLineUnderflow(&counter);
    EXPECT_EQ(counter, 0); // saturates at zero
}

TEST(Predictor, GlobalCounterSaturatesAtSeven)
{
    PageOverflowPredictor p;
    for (int i = 0; i < 20; ++i)
        p.onPageOverflow();
    EXPECT_EQ(p.global(), 7);
    for (int i = 0; i < 20; ++i)
        p.onPageShrink();
    EXPECT_EQ(p.global(), 0);
}

TEST(Predictor, FiresOnlyWhenBothHighBitsSet)
{
    PageOverflowPredictor p;
    uint8_t counter = 0;

    // Neither high: no.
    EXPECT_FALSE(p.predictInflate(&counter));

    // Local high only: no.
    counter = 2;
    EXPECT_FALSE(p.predictInflate(&counter));

    // Both high: yes.
    for (int i = 0; i < 4; ++i)
        p.onPageOverflow(); // global = 4 => high bit set
    EXPECT_TRUE(p.predictInflate(&counter));

    // Global high only: no.
    counter = 1;
    EXPECT_FALSE(p.predictInflate(&counter));
}

TEST(Predictor, NullCounterNeverFires)
{
    PageOverflowPredictor p;
    for (int i = 0; i < 8; ++i)
        p.onPageOverflow();
    EXPECT_FALSE(p.predictInflate(nullptr));
    // And the mutators tolerate nulls (non-resident metadata entries).
    p.onLineOverflow(nullptr);
    p.onLineUnderflow(nullptr);
}

TEST(Predictor, StreamingScenarioFires)
{
    // The motivating pattern: repeated line overflows while the system
    // is experiencing page overflows.
    PageOverflowPredictor p;
    uint8_t counter = 0;
    p.onLineOverflow(&counter);
    EXPECT_FALSE(p.predictInflate(&counter));
    p.onPageOverflow();
    p.onLineOverflow(&counter);
    EXPECT_FALSE(p.predictInflate(&counter)); // global still low
    for (int i = 0; i < 3; ++i)
        p.onPageOverflow();
    EXPECT_TRUE(p.predictInflate(&counter));
}
