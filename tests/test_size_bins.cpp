/**
 * @file
 * Tests for the size-bin quantizers (Sec. II-C / IV-B1 bin sets).
 */

#include <gtest/gtest.h>

#include "compress/size_bins.h"

using namespace compresso;

TEST(SizeBins, CompressoBinValues)
{
    const SizeBins &b = compressoBins();
    ASSERT_EQ(b.count(), 4u);
    EXPECT_EQ(b.binSize(0), 0);
    EXPECT_EQ(b.binSize(1), 8);
    EXPECT_EQ(b.binSize(2), 32);
    EXPECT_EQ(b.binSize(3), 64);
    EXPECT_EQ(b.codeBits(), 2u);
}

TEST(SizeBins, LegacyBinValues)
{
    const SizeBins &b = legacyBins();
    ASSERT_EQ(b.count(), 4u);
    EXPECT_EQ(b.binSize(1), 22);
    EXPECT_EQ(b.binSize(2), 44);
}

TEST(SizeBins, EightBinsUseThreeCodeBits)
{
    const SizeBins &b = eightBins();
    EXPECT_EQ(b.count(), 8u);
    EXPECT_EQ(b.codeBits(), 3u);
    EXPECT_EQ(b.binSize(7), 64);
}

TEST(SizeBins, ZeroLineAlwaysBinZero)
{
    EXPECT_EQ(compressoBins().binFor(0, true), 0u);
    EXPECT_EQ(compressoBins().binFor(64, true), 0u);
}

TEST(SizeBins, NonZeroNeverMapsToBinZero)
{
    // Even a 0-byte non-zero payload (impossible, but defensively)
    // must land in a real bin.
    EXPECT_GE(compressoBins().binFor(0, false), 1u);
    EXPECT_GE(compressoBins().binFor(1, false), 1u);
}

TEST(SizeBins, QuantizeRoundsUp)
{
    const SizeBins &b = compressoBins();
    EXPECT_EQ(b.quantize(1, false), 8);
    EXPECT_EQ(b.quantize(8, false), 8);
    EXPECT_EQ(b.quantize(9, false), 32);
    EXPECT_EQ(b.quantize(32, false), 32);
    EXPECT_EQ(b.quantize(33, false), 64);
    EXPECT_EQ(b.quantize(64, false), 64);
}

TEST(SizeBins, OversizeClampsToTop)
{
    // Compressed encodings can exceed 64 B on adversarial data; they
    // are stored raw in the top bin.
    EXPECT_EQ(compressoBins().binFor(72, false), 3u);
    EXPECT_EQ(compressoBins().quantize(100, false), 64);
}

TEST(SizeBins, MonotoneQuantization)
{
    const SizeBins &b = eightBins();
    uint16_t prev = 0;
    for (size_t s = 1; s <= 80; ++s) {
        uint16_t q = b.quantize(s, false);
        EXPECT_GE(q, prev);
        if (s <= 64)
            EXPECT_GE(size_t(q), s);
        prev = q;
    }
}
