/**
 * @file
 * Shared RunSink CLI surface (src/sim/run_export.h): every tool that
 * embeds the sink (bench_runner, fig04, fault_campaign, ...) must
 * resolve the shared flag matrix — --json / --obs / --obs-trace /
 * --obs-csv / --prof / --jobs / --campaign-json / --postmortem —
 * identically, leaving its own flags in extraArgs().
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/run_export.h"
#include "sim/runner.h"

using namespace compresso;

namespace {

/** Owns the argv storage for one parse. */
struct Argv
{
    explicit Argv(std::vector<std::string> args) : strings(std::move(args))
    {
        ptrs.reserve(strings.size());
        for (std::string &s : strings)
            ptrs.push_back(s.data());
    }
    int argc() const { return int(ptrs.size()); }
    char **argv() { return ptrs.data(); }

    std::vector<std::string> strings;
    std::vector<char *> ptrs;
};

/** The full shared-flag matrix, plus one tool-specific extra. */
std::vector<std::string>
matrixArgs(const std::string &tool)
{
    return {tool,
            "--json", "out.json",
            "--obs",
            "--obs-trace", "trace.json",
            "--obs-csv", "epochs.csv",
            "--prof",
            "--jobs", "3",
            "--campaign-json", "campaign.json",
            "--postmortem", "pm_dir",
            "--tool-specific-flag"};
}

const char *const kTools[] = {"bench_runner", "fig04",
                              "fault_campaign"};

TEST(RunSink, FlagMatrixParsesIdenticallyAcrossTools)
{
    for (const char *tool : kTools) {
        SCOPED_TRACE(tool);
        Argv av(matrixArgs(tool));
        RunSink sink;
        sink.init(av.argc(), av.argv(), tool);

        EXPECT_EQ(sink.tool(), tool);
        EXPECT_EQ(sink.jsonPath(), "out.json");
        EXPECT_EQ(sink.tracePath(), "trace.json");
        EXPECT_EQ(sink.csvPath(), "epochs.csv");
        EXPECT_EQ(sink.campaignJsonPath(), "campaign.json");
        EXPECT_EQ(sink.postmortemDir(), "pm_dir");
        EXPECT_TRUE(sink.obsRequested());
        EXPECT_TRUE(sink.profRequested());
        EXPECT_EQ(sink.jobs(), 3u);
        // The tool's own flag survives for its own parser.
        ASSERT_EQ(sink.extraArgs().size(), 1u);
        EXPECT_EQ(sink.extraArgs()[0], "--tool-specific-flag");
    }
}

TEST(RunSink, PostmortemImpliesObservability)
{
    for (const char *tool : kTools) {
        SCOPED_TRACE(tool);
        Argv av({tool, "--postmortem", "pm_dir"});
        RunSink sink;
        sink.init(av.argc(), av.argv(), tool);
        EXPECT_EQ(sink.postmortemDir(), "pm_dir");
        EXPECT_TRUE(sink.obsRequested());

        RunSpec spec;
        sink.apply(spec);
        EXPECT_TRUE(spec.obs.enabled);
    }
}

TEST(RunSink, DefaultsLeaveEverythingOff)
{
    Argv av({"bench_runner"});
    RunSink sink;
    sink.init(av.argc(), av.argv(), "bench_runner");
    EXPECT_TRUE(sink.jsonPath().empty());
    EXPECT_TRUE(sink.tracePath().empty());
    EXPECT_TRUE(sink.csvPath().empty());
    EXPECT_TRUE(sink.campaignJsonPath().empty());
    EXPECT_TRUE(sink.postmortemDir().empty());
    EXPECT_FALSE(sink.obsRequested());
    EXPECT_FALSE(sink.profRequested());
    EXPECT_TRUE(sink.extraArgs().empty());
    EXPECT_GE(sink.jobs(), 1u);
    // finish() with nothing requested is a clean no-op.
    EXPECT_EQ(sink.finish(), 0);
}

TEST(RunSink, ObsAloneDoesNotRequestPostmortemDir)
{
    Argv av({"fig04", "--obs"});
    RunSink sink;
    sink.init(av.argc(), av.argv(), "fig04");
    EXPECT_TRUE(sink.obsRequested());
    EXPECT_TRUE(sink.postmortemDir().empty());
}

} // namespace
