/**
 * @file
 * Structural invariants of the Compresso controller, checked after
 * randomized operation storms (property-style): metadata bounds,
 * allocation consistency, machine-memory accounting, and the
 * architectural limits of Sec. III (8 chunks, 17 inflated lines).
 */

#include <gtest/gtest.h>

#include "core/compresso_controller.h"
#include "workloads/datagen.h"

using namespace compresso;

namespace {

struct StormParams
{
    unsigned pages;
    double write_frac;
    unsigned ops;
    const char *label;
};

class CompressoInvariants
    : public ::testing::TestWithParam<StormParams>
{
};

void
checkPage(CompressoController &mc, PageNum page)
{
    const MetadataEntry &m = mc.pageMeta(page);
    const SizeBins &bins = mc.lineBins();

    ASSERT_LE(m.chunks, kChunksPerPage);
    ASSERT_LE(m.inflate_count, kMaxInflatedLines);

    if (!m.valid) {
        EXPECT_EQ(m.chunks, 0);
        return;
    }
    if (m.zero) {
        EXPECT_EQ(m.chunks, 0) << "zero pages use no chunks";
        return;
    }

    // Every allocated chunk pointer must be real.
    for (unsigned c = 0; c < m.chunks; ++c)
        EXPECT_NE(m.mpfn[c], kNoChunk);
    for (unsigned c = m.chunks; c < kChunksPerPage; ++c)
        EXPECT_EQ(m.mpfn[c], kNoChunk);

    // Packed region + inflation room fit the allocation.
    uint32_t pack = 0;
    for (uint8_t code : m.line_code)
        pack += bins.binSize(code);
    uint32_t used = uint32_t(roundUp(pack, kLineBytes)) +
                    uint32_t(m.inflate_count) * uint32_t(kLineBytes);
    EXPECT_LE(used, uint32_t(m.chunks) * kChunkBytes)
        << "page " << page << " overcommitted";

    // Inflation pointers reference distinct lines.
    for (unsigned i = 0; i < m.inflate_count; ++i) {
        EXPECT_LT(m.inflate_line[i], kLinesPerPage);
        for (unsigned j = i + 1; j < m.inflate_count; ++j)
            EXPECT_NE(m.inflate_line[i], m.inflate_line[j]);
    }

    // free_space never exceeds the allocation.
    EXPECT_LE(m.free_space, uint32_t(m.chunks) * kChunkBytes);
}

} // namespace

TEST_P(CompressoInvariants, HoldAfterRandomStorm)
{
    const StormParams &p = GetParam();
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(64) << 20;
    cfg.mdcache.size_bytes = 4 * 1024;
    CompressoController mc(cfg);

    Rng rng(Rng::mix(p.pages, p.ops));
    Line data;
    for (unsigned i = 0; i < p.ops; ++i) {
        Addr a = Addr(rng.below(p.pages)) * kPageBytes +
                 rng.below(kLinesPerPage) * kLineBytes;
        McTrace tr;
        if (rng.chance(p.write_frac)) {
            generateLine(DataClass(rng.below(kNumDataClasses)),
                         rng.next(), data);
            mc.writebackLine(a, data, tr);
        } else {
            mc.fillLine(a, data, tr);
        }
    }

    uint64_t chunk_bytes = 0;
    for (PageNum page = 0; page < p.pages; ++page) {
        checkPage(mc, page);
        chunk_bytes +=
            uint64_t(mc.pageMeta(page).chunks) * kChunkBytes;
    }
    // Machine accounting: the allocator's usage equals the sum of all
    // pages' allocations (no leaks, no double-frees).
    EXPECT_EQ(mc.mpaDataBytes(), chunk_bytes) << p.label;
}

TEST_P(CompressoInvariants, FreeingEverythingReturnsAllChunks)
{
    const StormParams &p = GetParam();
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(64) << 20;
    CompressoController mc(cfg);

    Rng rng(Rng::mix(p.ops, p.pages));
    Line data;
    for (unsigned i = 0; i < p.ops / 2; ++i) {
        generateLine(DataClass(rng.below(kNumDataClasses)), rng.next(),
                     data);
        McTrace tr;
        mc.writebackLine(Addr(rng.below(p.pages)) * kPageBytes +
                             rng.below(kLinesPerPage) * kLineBytes,
                         data, tr);
    }
    for (PageNum page = 0; page < p.pages; ++page)
        mc.freePage(page);
    EXPECT_EQ(mc.mpaDataBytes(), 0u) << p.label;
    EXPECT_EQ(mc.ospaBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Storms, CompressoInvariants,
    ::testing::Values(StormParams{2, 0.8, 4000, "two_hot_pages"},
                      StormParams{16, 0.5, 6000, "balanced"},
                      StormParams{64, 0.3, 6000, "read_heavy"},
                      StormParams{8, 0.95, 8000, "write_storm"}),
    [](const auto &info) { return info.param.label; });

TEST(CompressoLimits, SeventeenInflatedLinesMax)
{
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(32) << 20;
    cfg.overflow_prediction = false; // no early bailout to raw pages
    CompressoController mc(cfg);
    Line small, big;

    // Fill a page with compressible lines, then overflow lines one by
    // one from the back (non-empty tails => real overflows).
    for (unsigned l = 0; l < kLinesPerPage; ++l) {
        generateLine(DataClass::kDeltaInt, l, small);
        McTrace tr;
        mc.writebackLine(Addr(1) * kPageBytes + l * kLineBytes, small,
                         tr);
    }
    Rng rng(5);
    for (int l = 40; l >= 0; --l) {
        generateLine(DataClass::kRandom, rng.next(), big);
        McTrace tr;
        mc.writebackLine(Addr(1) * kPageBytes + unsigned(l) * kLineBytes,
                         big, tr);
        ASSERT_LE(mc.pageMeta(1).inflate_count, kMaxInflatedLines);
    }
    // All data still correct despite the forced slot growths.
    Rng rng2(5);
    for (int l = 40; l >= 0; --l) {
        generateLine(DataClass::kRandom, rng2.next(), big);
        Line out;
        McTrace tr;
        mc.fillLine(Addr(1) * kPageBytes + unsigned(l) * kLineBytes, out,
                    tr);
        ASSERT_EQ(out, big) << l;
    }
}
