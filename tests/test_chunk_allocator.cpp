/**
 * @file
 * Tests for the 512 B machine-chunk allocator.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/chunk_allocator.h"

using namespace compresso;

TEST(ChunkAllocator, CapacityInChunks)
{
    ChunkAllocator a(8192);
    EXPECT_EQ(a.totalChunks(), 16u);
    EXPECT_EQ(a.usedChunks(), 0u);
    EXPECT_EQ(a.freeChunks(), 16u);
}

TEST(ChunkAllocator, AllocateUnique)
{
    ChunkAllocator a(16 * kChunkBytes);
    std::set<ChunkNum> seen;
    for (int i = 0; i < 16; ++i) {
        ChunkNum c = a.allocate();
        ASSERT_NE(c, kNoChunk);
        EXPECT_TRUE(seen.insert(c).second) << "duplicate chunk";
    }
    EXPECT_EQ(a.usedChunks(), 16u);
}

TEST(ChunkAllocator, ExhaustionReturnsSentinel)
{
    ChunkAllocator a(2 * kChunkBytes);
    a.allocate();
    a.allocate();
    EXPECT_EQ(a.allocate(), kNoChunk);
}

TEST(ChunkAllocator, ReleaseRecycles)
{
    ChunkAllocator a(2 * kChunkBytes);
    ChunkNum c0 = a.allocate();
    a.allocate();
    a.release(c0);
    EXPECT_EQ(a.usedChunks(), 1u);
    ChunkNum c2 = a.allocate();
    EXPECT_EQ(c2, c0); // free list reuse
}

TEST(ChunkAllocator, FreshChunksAreZeroed)
{
    ChunkAllocator a(4 * kChunkBytes);
    ChunkNum c = a.allocate();
    for (uint8_t b : a.data(c))
        ASSERT_EQ(b, 0);
}

TEST(ChunkAllocator, RecycledChunksAreZeroed)
{
    ChunkAllocator a(4 * kChunkBytes);
    ChunkNum c = a.allocate();
    a.data(c).fill(0xAB);
    a.release(c);
    ChunkNum c2 = a.allocate();
    ASSERT_EQ(c2, c);
    for (uint8_t b : a.data(c2))
        ASSERT_EQ(b, 0);
}

TEST(ChunkAllocator, DataPersists)
{
    ChunkAllocator a(4 * kChunkBytes);
    ChunkNum c = a.allocate();
    a.data(c)[17] = 0x5a;
    EXPECT_EQ(a.data(c)[17], 0x5a);
}

TEST(ChunkAllocator, UsedBytesTracksChunks)
{
    ChunkAllocator a(8 * kChunkBytes);
    a.allocate();
    a.allocate();
    EXPECT_EQ(a.usedBytes(), 2 * kChunkBytes);
}

TEST(ChunkAllocator, AuditSurface)
{
    ChunkAllocator a(8 * kChunkBytes);
    ChunkNum c0 = a.allocate();
    ChunkNum c1 = a.allocate();
    EXPECT_TRUE(a.isLive(c0));
    EXPECT_TRUE(a.isLive(c1));
    EXPECT_EQ(a.freshFrontier(), 2u);
    a.release(c0);
    EXPECT_FALSE(a.isLive(c0));
    std::set<ChunkNum> live;
    a.forEachLive([&](ChunkNum c) { live.insert(c); });
    EXPECT_EQ(live, std::set<ChunkNum>{c1});
}

// Releasing anything that is not live must be a hard error in every
// build type: silently decrementing `used_` and pushing a bogus id
// onto the free list is exactly the stale-metadata corruption the
// invariant auditor exists to catch downstream.

using ChunkAllocatorDeathTest = ::testing::Test;

TEST(ChunkAllocatorDeathTest, DoubleReleaseAborts)
{
    ChunkAllocator a(4 * kChunkBytes);
    ChunkNum c = a.allocate();
    a.release(c);
    EXPECT_DEATH(a.release(c), "not live");
}

TEST(ChunkAllocatorDeathTest, ReleaseNeverAllocatedAborts)
{
    ChunkAllocator a(4 * kChunkBytes);
    a.allocate();
    EXPECT_DEATH(a.release(3), "not live"); // past the frontier
}

TEST(ChunkAllocatorDeathTest, ReleaseOutOfRangeAborts)
{
    ChunkAllocator a(4 * kChunkBytes);
    EXPECT_DEATH(a.release(kNoChunk), "not live");
}

TEST(ChunkAllocatorDeathTest, DataOfDeadChunkAborts)
{
    ChunkAllocator a(4 * kChunkBytes);
    ChunkNum c = a.allocate();
    a.release(c);
    EXPECT_DEATH(a.data(c), "not live");
}
