/**
 * @file
 * Tests for the 512 B machine-chunk allocator.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/chunk_allocator.h"

using namespace compresso;

TEST(ChunkAllocator, CapacityInChunks)
{
    ChunkAllocator a(8192);
    EXPECT_EQ(a.totalChunks(), 16u);
    EXPECT_EQ(a.usedChunks(), 0u);
    EXPECT_EQ(a.freeChunks(), 16u);
}

TEST(ChunkAllocator, AllocateUnique)
{
    ChunkAllocator a(16 * kChunkBytes);
    std::set<ChunkNum> seen;
    for (int i = 0; i < 16; ++i) {
        ChunkNum c = a.allocate();
        ASSERT_NE(c, kNoChunk);
        EXPECT_TRUE(seen.insert(c).second) << "duplicate chunk";
    }
    EXPECT_EQ(a.usedChunks(), 16u);
}

TEST(ChunkAllocator, ExhaustionReturnsSentinel)
{
    ChunkAllocator a(2 * kChunkBytes);
    a.allocate();
    a.allocate();
    EXPECT_EQ(a.allocate(), kNoChunk);
}

TEST(ChunkAllocator, ReleaseRecycles)
{
    ChunkAllocator a(2 * kChunkBytes);
    ChunkNum c0 = a.allocate();
    a.allocate();
    a.release(c0);
    EXPECT_EQ(a.usedChunks(), 1u);
    ChunkNum c2 = a.allocate();
    EXPECT_EQ(c2, c0); // free list reuse
}

TEST(ChunkAllocator, FreshChunksAreZeroed)
{
    ChunkAllocator a(4 * kChunkBytes);
    ChunkNum c = a.allocate();
    for (uint8_t b : a.data(c))
        ASSERT_EQ(b, 0);
}

TEST(ChunkAllocator, RecycledChunksAreZeroed)
{
    ChunkAllocator a(4 * kChunkBytes);
    ChunkNum c = a.allocate();
    a.data(c).fill(0xAB);
    a.release(c);
    ChunkNum c2 = a.allocate();
    ASSERT_EQ(c2, c);
    for (uint8_t b : a.data(c2))
        ASSERT_EQ(b, 0);
}

TEST(ChunkAllocator, DataPersists)
{
    ChunkAllocator a(4 * kChunkBytes);
    ChunkNum c = a.allocate();
    a.data(c)[17] = 0x5a;
    EXPECT_EQ(a.data(c)[17], 0x5a);
}

TEST(ChunkAllocator, UsedBytesTracksChunks)
{
    ChunkAllocator a(8 * kChunkBytes);
    a.allocate();
    a.allocate();
    EXPECT_EQ(a.usedBytes(), 2 * kChunkBytes);
}
