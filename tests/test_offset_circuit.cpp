/**
 * @file
 * Tests for the offset-calculation unit model (Sec. VII-E).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/offset_circuit.h"
#include "packing/linepack.h"

using namespace compresso;

TEST(OffsetCircuit, ShiftTrickAppliesToCompressoBins)
{
    OffsetCircuit oc(compressoBins());
    EXPECT_TRUE(oc.shiftTrickApplies());
}

TEST(OffsetCircuit, ShiftTrickRejectedForLegacyBins)
{
    OffsetCircuit oc(legacyBins());
    EXPECT_FALSE(oc.shiftTrickApplies());
}

TEST(OffsetCircuit, MatchesPrefixSumReference)
{
    OffsetCircuit oc(compressoBins());
    Rng rng(3);
    for (int iter = 0; iter < 50; ++iter) {
        std::array<uint8_t, kLinesPerPage> codes;
        for (auto &c : codes)
            c = uint8_t(rng.below(4));
        for (LineIdx idx : {LineIdx(0), LineIdx(1), LineIdx(31),
                            LineIdx(63)}) {
            EXPECT_EQ(oc.offset(codes, idx),
                      linePackOffset(codes, compressoBins(), idx));
        }
    }
}

TEST(OffsetCircuit, LegacyBinsStillComputeCorrectly)
{
    OffsetCircuit oc(legacyBins());
    std::array<uint8_t, kLinesPerPage> codes{};
    codes.fill(1); // 22 B each
    EXPECT_EQ(oc.offset(codes, 3), 66u);
}

TEST(OffsetCircuit, AreaAndDelayMatchPaper)
{
    OffsetCircuit oc(compressoBins());
    // "under 1.5K NAND gates and 38 gate delays, reducible to 32".
    EXPECT_LE(oc.gateCount(), 1600u);
    EXPECT_EQ(oc.gateDelays(), 32u);
    EXPECT_EQ(oc.extraCycles(), 1u);
}

TEST(OffsetCircuit, OffsetZeroForFirstLine)
{
    OffsetCircuit oc(compressoBins());
    std::array<uint8_t, kLinesPerPage> codes;
    codes.fill(3);
    EXPECT_EQ(oc.offset(codes, 0), 0u);
}
