/**
 * @file
 * Simulated-cycle attribution (src/obs/attrib, DESIGN.md §15):
 * CycleAttributor accounting on scripted traces — conservation
 * enforcement, background split, exemplar retention, reset — plus
 * end-to-end conservation across every controller kind, the
 * no-perturbation guard, and the run-v3 export round-trip through
 * tools/obs_report.py (including v2 back-compat).
 */

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/attrib.h"
#include "sim/run_export.h"
#include "sim/runner.h"

using namespace compresso;

namespace {

AttribVec
vec(std::initializer_list<std::pair<AttribComp, Cycle>> parts)
{
    AttribVec v{};
    for (const auto &[c, cycles] : parts)
        v[size_t(c)] = cycles;
    return v;
}

Cycle
sum(const AttribVec &v)
{
    Cycle s = 0;
    for (Cycle c : v)
        s += c;
    return s;
}

// ---------------------------------------------------------------------
// Scripted-trace accounting
// ---------------------------------------------------------------------

TEST(CycleAttributor, ComponentsSumToObservedStallOnScriptedTrace)
{
    CycleAttributor at;
    AttribVec a = vec({{AttribComp::kDeviceData, 180},
                       {AttribComp::kMdcacheHit, 2},
                       {AttribComp::kDecompress, 12}});
    AttribVec b = vec({{AttribComp::kDeviceData, 200},
                       {AttribComp::kDeviceExtra, 90},
                       {AttribComp::kMdcacheMiss, 40}});
    at.record(0x1000, sum(a), a);
    at.record(0x2000, sum(b), b);

    EXPECT_EQ(at.refs(), 2u);
    EXPECT_EQ(at.conservationFailures(), 0u);

    AttribSnapshot snap = at.snapshot();
    EXPECT_TRUE(snap.enabled);
    EXPECT_EQ(snap.refs, 2u);
    EXPECT_EQ(snap.total_cycles, sum(a) + sum(b));

    uint64_t comp_total = 0;
    for (const auto &c : snap.comps)
        comp_total += c.cycles;
    EXPECT_EQ(comp_total, snap.total_cycles);

    const auto &dev = snap.comps[size_t(AttribComp::kDeviceData)];
    EXPECT_EQ(dev.cycles, 380u);
    EXPECT_EQ(dev.count, 2u);
    EXPECT_EQ(dev.max, 200u);
    const auto &md = snap.comps[size_t(AttribComp::kMdcacheMiss)];
    EXPECT_EQ(md.cycles, 40u);
    EXPECT_EQ(md.count, 1u);
}

#ifndef COMPRESSO_CHECKED_BUILD
TEST(CycleAttributor, ConservationBreachIsCounted)
{
    // Checked builds abort here by design; release builds count the
    // drift so CI can gate on it from the exported document.
    CycleAttributor at;
    AttribVec v = vec({{AttribComp::kDeviceData, 100}});
    at.record(0x1000, 101, v); // claims 101, components sum to 100
    EXPECT_EQ(at.conservationFailures(), 1u);
    at.record(0x2000, 100, v);
    EXPECT_EQ(at.conservationFailures(), 1u);
    EXPECT_EQ(at.snapshot().conservation_failures, 1u);
}
#endif

TEST(CycleAttributor, BackgroundCyclesStayOffTheCriticalPath)
{
    CycleAttributor at;
    at.background(AttribComp::kRepack, 500);
    at.background(AttribComp::kRepack, 100);

    AttribSnapshot snap = at.snapshot();
    EXPECT_EQ(snap.refs, 0u);
    EXPECT_EQ(snap.total_cycles, 0u);
    const auto &rp = snap.comps[size_t(AttribComp::kRepack)];
    EXPECT_EQ(rp.background_cycles, 600u);
    EXPECT_EQ(rp.cycles, 0u);
    EXPECT_EQ(rp.count, 0u);
}

TEST(CycleAttributor, ExemplarsKeepGlobalWorstSortedAndCapped)
{
    AttribConfig cfg;
    cfg.exemplars_per_epoch = 2;
    cfg.epoch_refs = 4;
    cfg.max_exemplars = 3;
    CycleAttributor at(cfg);

    // Two epochs of four refs; totals chosen so the global worst-3
    // spans both epochs.
    const Cycle totals[] = {10, 80, 30, 20, 50, 5, 90, 40};
    for (size_t i = 0; i < 8; ++i) {
        AttribVec v = vec({{AttribComp::kDeviceData, totals[i]}});
        at.record(Addr(0x1000 + i), totals[i], v);
    }

    AttribSnapshot snap = at.snapshot();
    ASSERT_EQ(snap.exemplars.size(), 3u);
    EXPECT_EQ(snap.exemplars[0].total, 90u);
    EXPECT_EQ(snap.exemplars[1].total, 80u);
    EXPECT_EQ(snap.exemplars[2].total, 50u);
    EXPECT_EQ(snap.exemplars[0].ref_index, 6u);
    // Each exemplar carries its full decomposition.
    EXPECT_EQ(snap.exemplars[0].comp[size_t(AttribComp::kDeviceData)],
              90u);
}

TEST(CycleAttributor, TiesBreakOnEarlierReference)
{
    AttribConfig cfg;
    cfg.exemplars_per_epoch = 4;
    cfg.epoch_refs = 0; // single open epoch
    cfg.max_exemplars = 2;
    CycleAttributor at(cfg);
    for (size_t i = 0; i < 3; ++i) {
        AttribVec v = vec({{AttribComp::kDeviceData, 42}});
        at.record(Addr(i), 42, v);
    }
    AttribSnapshot snap = at.snapshot();
    ASSERT_EQ(snap.exemplars.size(), 2u);
    EXPECT_EQ(snap.exemplars[0].ref_index, 0u);
    EXPECT_EQ(snap.exemplars[1].ref_index, 1u);
}

TEST(CycleAttributor, ResetClearsAllState)
{
    CycleAttributor at;
    AttribVec v = vec({{AttribComp::kDeviceData, 100}});
    at.record(0x1000, 100, v);
    at.background(AttribComp::kCompress, 10);

    at.reset();
    EXPECT_EQ(at.refs(), 0u);
    AttribSnapshot snap = at.snapshot();
    EXPECT_EQ(snap.refs, 0u);
    EXPECT_EQ(snap.total_cycles, 0u);
    EXPECT_TRUE(snap.exemplars.empty());
    for (const auto &c : snap.comps) {
        EXPECT_EQ(c.cycles, 0u);
        EXPECT_EQ(c.background_cycles, 0u);
        EXPECT_EQ(c.count, 0u);
    }
}

TEST(AttribTaxonomy, NamesAreStableAndComplete)
{
    // The JSON schema depends on these exact strings; a rename is a
    // schema break, not a refactor.
    EXPECT_STREQ(attribCompName(AttribComp::kMdcacheHit), "mdcache_hit");
    EXPECT_STREQ(attribCompName(AttribComp::kSwapIo), "swap_io");
    EXPECT_STREQ(attribCompName(AttribComp::kOsFault), "os_fault");
    for (size_t c = 0; c < kAttribComps; ++c)
        EXPECT_STRNE(attribCompName(AttribComp(c)), "?");
}

// ---------------------------------------------------------------------
// End-to-end conservation across controllers
// ---------------------------------------------------------------------

RunSpec
smallSpec(McKind kind)
{
    RunSpec spec;
    spec.kind = kind;
    spec.workloads = {"gcc"};
    spec.refs_per_core = 6000;
    spec.warmup_refs = 600;
    return spec;
}

TEST(AttribEndToEnd, EveryControllerConservesCycles)
{
#ifdef COMPRESSO_OBS_DISABLED
    GTEST_SKIP() << "attribution compiled out";
#endif
    for (McKind kind : {McKind::kUncompressed, McKind::kLcp,
                        McKind::kLcpAlign, McKind::kRmc,
                        McKind::kCompresso}) {
        RunSpec spec = smallSpec(kind);
        spec.obs.enabled = true;
        RunResult r = runSystem(spec);

        ASSERT_TRUE(r.attrib.enabled) << mcKindName(kind);
        EXPECT_GT(r.attrib.refs, 0u) << mcKindName(kind);
        EXPECT_EQ(r.attrib.conservation_failures, 0u) << mcKindName(kind);

        uint64_t comp_total = 0;
        for (const auto &c : r.attrib.comps)
            comp_total += c.cycles;
        EXPECT_EQ(comp_total, r.attrib.total_cycles) << mcKindName(kind);
        EXPECT_GT(r.attrib.total_cycles, 0u) << mcKindName(kind);
        EXPECT_FALSE(r.attrib.exemplars.empty()) << mcKindName(kind);
    }
}

TEST(AttribEndToEnd, AttributionDoesNotPerturbTheSimulation)
{
    RunSpec off_spec = smallSpec(McKind::kCompresso);
    off_spec.obs.enabled = true;
    off_spec.obs.attribution = false;
    RunResult off = runSystem(off_spec);

    RunSpec on_spec = smallSpec(McKind::kCompresso);
    on_spec.obs.enabled = true;
    RunResult on = runSystem(on_spec);

    EXPECT_FALSE(off.attrib.enabled);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.insts, on.insts);
    EXPECT_EQ(off.mc_stats.counters(), on.mc_stats.counters());
    EXPECT_EQ(off.dram_stats.counters(), on.dram_stats.counters());
}

TEST(AttribEndToEnd, WarmupResetCoversOnlyTheMeasuredSection)
{
#ifdef COMPRESSO_OBS_DISABLED
    GTEST_SKIP() << "attribution compiled out";
#endif
    RunSpec spec = smallSpec(McKind::kCompresso);
    spec.obs.enabled = true;
    RunResult r = runSystem(spec);
    // Post-warmup reset: the demand-fill refs recorded cannot exceed
    // the measured references (warmup refs were cleared). Writeback
    // stalls add their own records, so compare against fills only.
    EXPECT_LE(r.attrib.refs,
              uint64_t(r.mc_stats.get("fills") +
                       r.mc_stats.get("writebacks")));
}

// ---------------------------------------------------------------------
// Export round-trip through tools/obs_report.py
// ---------------------------------------------------------------------

std::string
toolPath()
{
    // tests/test_attrib.cpp -> <repo>/tools/obs_report.py
    std::string file = __FILE__;
    size_t slash = file.rfind('/');
    std::string dir = slash == std::string::npos
                          ? std::string(".")
                          : file.substr(0, slash);
    return dir + "/../tools/obs_report.py";
}

bool
havePython()
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    return std::system("python3 -c 'pass' >/dev/null 2>&1") == 0;
}

int
runTool(const std::string &args)
{
    std::string cmd =
        "python3 " + toolPath() + " " + args + " >/dev/null 2>&1";
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    int rc = std::system(cmd.c_str());
    return rc;
}

std::string
writeRunDoc(const std::string &name, bool as_v2)
{
#ifdef COMPRESSO_OBS_DISABLED
    RunSpec spec = smallSpec(McKind::kCompresso);
#else
    RunSpec spec = smallSpec(McKind::kCompresso);
    spec.obs.enabled = true;
#endif
    RunResult r = runSystem(spec);
    std::ostringstream os;
    writeRunsJson(os, "test_attrib", {r});
    std::string doc = os.str();
    if (as_v2) {
        // A v2 document is the v3 shape minus the latency_breakdown
        // guarantee; readers must accept it by schema tag alone.
        // Derive the tag from the canonical constant so the literal
        // stays confined to sim/schema_versions.h.
        std::string v3 = kRunJsonSchema;
        std::string v2 = v3.substr(0, v3.size() - 1) + "2";
        size_t pos = doc.find(v3);
        if (pos != std::string::npos)
            doc.replace(pos, v3.size(), v2);
    }
    std::string path = testing::TempDir() + name;
    std::ofstream out(path);
    out << doc;
    return path;
}

TEST(AttribExport, V3DocumentPassesCheckSummaryAndBreakdown)
{
    if (!havePython())
        GTEST_SKIP() << "python3 unavailable";
    std::string path = writeRunDoc("attrib_v3.json", /*as_v2=*/false);
    EXPECT_EQ(runTool("check " + path), 0);
    EXPECT_EQ(runTool("summary " + path), 0);
#ifndef COMPRESSO_OBS_DISABLED
    EXPECT_EQ(runTool("breakdown " + path + " --max-share 100"), 0);
    EXPECT_EQ(runTool("exemplars " + path), 0);
#endif
    std::remove(path.c_str());
}

TEST(AttribExport, V2DocumentRoundTripsThroughTheV3Reader)
{
    if (!havePython())
        GTEST_SKIP() << "python3 unavailable";
    std::string path = writeRunDoc("attrib_v2.json", /*as_v2=*/true);
    EXPECT_EQ(runTool("check " + path), 0);
    EXPECT_EQ(runTool("summary " + path), 0);
    std::remove(path.c_str());
}

TEST(AttribExport, DiffFailsAcrossSchemaGenerations)
{
    if (!havePython())
        GTEST_SKIP() << "python3 unavailable";
    std::string v3 = writeRunDoc("attrib_d3.json", /*as_v2=*/false);
    std::string v2 = writeRunDoc("attrib_d2.json", /*as_v2=*/true);
    EXPECT_EQ(runTool("diff " + v3 + " " + v3), 0);
    // Mismatched generations: still diffs the shared sections but
    // exits 2 so automation cannot mistake it for a clean compare.
    int rc = runTool("diff " + v2 + " " + v3);
    EXPECT_NE(rc, 0);
    std::remove(v3.c_str());
    std::remove(v2.c_str());
}

} // namespace
