/**
 * @file
 * Tests for multi-channel DRAM (4-core systems run dual-channel).
 */

#include <gtest/gtest.h>

#include "dram/dram_model.h"

using namespace compresso;

namespace {

DramConfig
dual()
{
    DramConfig cfg;
    cfg.channels = 2;
    return cfg;
}

} // namespace

TEST(DramChannels, AdjacentLinesAlternateChannels)
{
    // Two accesses to adjacent lines at the same instant land on
    // different channels: their bursts do not serialize on one bus.
    DramModel one{DramConfig{}};
    DramModel two{dual()};

    Cycle a1 = one.access(0, false, 0);
    Cycle b1 = one.access(64, false, 0);
    Cycle a2 = two.access(0, false, 0);
    Cycle b2 = two.access(64, false, 0);

    EXPECT_GT(b1, a1);      // single channel: bus-serialized
    EXPECT_EQ(b2, a2);      // dual channel: fully parallel
}

TEST(DramChannels, SameChannelStillSerializes)
{
    DramModel d{dual()};
    Cycle a = d.access(0, false, 0);
    Cycle b = d.access(128, false, 0); // line 2 -> channel 0 again
    EXPECT_GT(b, a);
}

TEST(DramChannels, RowStatePerChannelBank)
{
    DramModel d{dual()};
    d.access(0, false, 0);  // channel 0
    d.access(64, false, 0); // channel 1
    EXPECT_EQ(d.stats().get("row_misses"), 2u);
    // Hitting the same lines again: both rows are open.
    d.access(0, false, 1000);
    d.access(64, false, 1000);
    EXPECT_EQ(d.stats().get("row_hits"), 2u);
}

TEST(DramChannels, ThroughputScalesWithChannels)
{
    DramModel one{DramConfig{}};
    DramModel two{dual()};
    Cycle done1 = 0, done2 = 0;
    for (unsigned i = 0; i < 64; ++i) {
        done1 = std::max(done1, one.access(Addr(i) * 64, false, 0));
        done2 = std::max(done2, two.access(Addr(i) * 64, false, 0));
    }
    // The dual-channel stream drains in roughly half the time.
    EXPECT_LT(done2, done1 * 3 / 4);
}

TEST(DramChannels, ResetClearsAllChannels)
{
    DramModel d{dual()};
    d.access(0, false, 0);
    d.access(64, false, 0);
    d.reset();
    EXPECT_EQ(d.stats().get("reads"), 0u);
    Cycle t = d.access(64, false, 0);
    EXPECT_EQ(d.stats().get("row_misses"), 1u); // row closed again
    EXPECT_GT(t, 0u);
}
