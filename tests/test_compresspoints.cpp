/**
 * @file
 * Tests for the CompressPoints interval-selection pipeline
 * (Sec. VI-B): feature extraction, clustering determinism, and the
 * core claim that compression-aware selection estimates the run's
 * compression ratio better than BBV-only selection on phased
 * workloads.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "capacity/compresspoints.h"

using namespace compresso;

TEST(CompressPoints, FeatureExtractionShape)
{
    auto f = profileIntervals(profileByName("GemsFDTD"), 12);
    ASSERT_EQ(f.size(), 12u);
    for (const auto &iv : f) {
        EXPECT_EQ(iv.bbv.size(), 8u);
        EXPECT_GE(iv.comp_ratio, 1.0);
        EXPECT_GE(iv.memory_usage, 0.0);
        EXPECT_LE(iv.memory_usage, 1.0);
    }
}

TEST(CompressPoints, PhasedWorkloadHasRatioVariance)
{
    auto f = profileIntervals(profileByName("GemsFDTD"), 12);
    double lo = 1e9, hi = 0;
    for (const auto &iv : f) {
        lo = std::min(lo, iv.comp_ratio);
        hi = std::max(hi, iv.comp_ratio);
    }
    EXPECT_GT(hi / lo, 1.3) << "phases must change compressibility";
}

TEST(CompressPoints, UnphasedWorkloadIsStable)
{
    auto f = profileIntervals(profileByName("povray"), 8);
    double lo = 1e9, hi = 0;
    for (const auto &iv : f) {
        lo = std::min(lo, iv.comp_ratio);
        hi = std::max(hi, iv.comp_ratio);
    }
    EXPECT_LT(hi / lo, 1.05);
}

TEST(CompressPoints, SelectionIsDeterministic)
{
    auto f = profileIntervals(profileByName("astar"), 12);
    auto a = selectPoints(f, PointKind::kCompressPoint, 3, 7);
    auto b = selectPoints(f, PointKind::kCompressPoint, 3, 7);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].interval, b[i].interval);
        EXPECT_DOUBLE_EQ(a[i].weight, b[i].weight);
    }
}

TEST(CompressPoints, WeightsSumToOne)
{
    auto f = profileIntervals(profileByName("gcc"), 16);
    auto pts = selectPoints(f, PointKind::kCompressPoint, 4);
    double sum = 0;
    for (const auto &p : pts)
        sum += p.weight;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_LE(pts.size(), 4u);
    EXPECT_GE(pts.size(), 1u);
}

TEST(CompressPoints, KBoundedByIntervalCount)
{
    auto f = profileIntervals(profileByName("gcc"), 3);
    auto pts = selectPoints(f, PointKind::kSimPoint, 10);
    EXPECT_LE(pts.size(), 3u);
}

TEST(CompressPoints, BetterRatioEstimateThanSimPoints)
{
    // The paper's core Sec. VI-B claim, on the phased workloads of
    // Fig. 9. SimPoint features are compressibility-blind, so across
    // seeds its estimate scatters; CompressPoints stay close to truth.
    for (const char *bench : {"GemsFDTD", "astar"}) {
        auto f = profileIntervals(profileByName(bench), 18);
        double truth = trueRatio(f);

        double sim_err = 0, cp_err = 0;
        int seeds = 8;
        for (int seed = 0; seed < seeds; ++seed) {
            auto sim = selectPoints(f, PointKind::kSimPoint, 3, seed);
            auto cp =
                selectPoints(f, PointKind::kCompressPoint, 3, seed);
            sim_err +=
                std::fabs(estimateRatio(f, sim) - truth) / truth;
            cp_err += std::fabs(estimateRatio(f, cp) - truth) / truth;
        }
        EXPECT_LE(cp_err, sim_err + 1e-9) << bench;
        EXPECT_LT(cp_err / seeds, 0.12) << bench;
    }
}

TEST(CompressPoints, EstimateMatchesTruthWhenAllSelected)
{
    auto f = profileIntervals(profileByName("astar"), 8);
    auto pts = selectPoints(f, PointKind::kCompressPoint, 8);
    EXPECT_NEAR(estimateRatio(f, pts), trueRatio(f),
                0.25 * trueRatio(f));
}
