/**
 * @file
 * Unit tests for the fault subsystem: SECDED adjudication, targeted
 * injection, scrub semantics, chunk faults, and the determinism
 * guarantee (two identical campaigns produce bit-identical
 * ReliabilityReports).
 */

#include <gtest/gtest.h>

#include "fault/ecc.h"
#include "fault/fault_hooks.h"
#include "fault/fault_injector.h"

using namespace compresso;

namespace {

FaultConfig
quietConfig()
{
    // All rates zero: only targeted injection deposits faults.
    FaultConfig cfg;
    cfg.seed = 42;
    return cfg;
}

} // namespace

TEST(Ecc, SecdedClassification)
{
    EccModel ecc;
    EXPECT_EQ(ecc.classify(0), FaultOutcome::kClean);
    EXPECT_EQ(ecc.classify(1), FaultOutcome::kCorrected);
    EXPECT_EQ(ecc.classify(2), FaultOutcome::kDetected);
    EXPECT_EQ(ecc.classify(3), FaultOutcome::kSilent);
    EXPECT_EQ(ecc.classify(17), FaultOutcome::kSilent);
}

TEST(Ecc, DisabledMissesEverything)
{
    EccModel ecc;
    ecc.enabled = false;
    EXPECT_EQ(ecc.classify(0), FaultOutcome::kClean);
    EXPECT_EQ(ecc.classify(1), FaultOutcome::kSilent);
    EXPECT_EQ(ecc.classify(2), FaultOutcome::kSilent);
}

TEST(FaultInjector, CleanReadWithoutFaults)
{
    FaultInjector fi(quietConfig());
    EXPECT_EQ(fi.onRead(0x1000, false), FaultOutcome::kClean);
    EXPECT_EQ(fi.report().injected(), 0u);
    EXPECT_EQ(fi.pendingFaultyBlocks(), 0u);
}

TEST(FaultInjector, TargetedSingleBitIsCorrected)
{
    FaultInjector fi(quietConfig());
    fi.inject(0x1000, 1, /*metadata=*/false);
    EXPECT_EQ(fi.storedFaultBits(0x1000), 1u);
    EXPECT_EQ(fi.onRead(0x1000, false), FaultOutcome::kCorrected);
    EXPECT_EQ(fi.report().corrected, 1u);
    EXPECT_EQ(fi.report().single_bit_faults, 1u);
    EXPECT_EQ(fi.report().data_faults, 1u);
}

TEST(FaultInjector, TargetedDoubleBitIsDetected)
{
    FaultInjector fi(quietConfig());
    fi.inject(0x2000, 2, /*metadata=*/true);
    EXPECT_EQ(fi.onRead(0x2000, true), FaultOutcome::kDetected);
    EXPECT_EQ(fi.report().detected_uncorrectable, 1u);
    EXPECT_EQ(fi.report().double_bit_faults, 1u);
    EXPECT_EQ(fi.report().metadata_faults, 1u);
}

TEST(FaultInjector, TripleBitEscapesSecded)
{
    FaultInjector fi(quietConfig());
    fi.inject(0x3000, 3, false);
    EXPECT_EQ(fi.onRead(0x3000, false), FaultOutcome::kSilent);
    EXPECT_EQ(fi.report().silent_corruptions, 1u);
}

TEST(FaultInjector, FaultsAccumulateUntilScrub)
{
    FaultInjector fi(quietConfig());
    fi.inject(0x4000, 1, false);
    fi.inject(0x4000, 1, false);
    // Two lingering single-bit upsets in one block meet as a DUE.
    EXPECT_EQ(fi.storedFaultBits(0x4000), 2u);
    EXPECT_EQ(fi.onRead(0x4000, false), FaultOutcome::kDetected);
    fi.scrub(0x4000);
    EXPECT_EQ(fi.storedFaultBits(0x4000), 0u);
    EXPECT_EQ(fi.onRead(0x4000, false), FaultOutcome::kClean);
    EXPECT_EQ(fi.pendingFaultyBlocks(), 0u);
}

TEST(FaultInjector, SubBlockAddressesShareOneBlock)
{
    FaultInjector fi(quietConfig());
    fi.inject(0x5004, 1, false); // not 64 B aligned
    EXPECT_EQ(fi.storedFaultBits(0x5000), 1u);
    EXPECT_EQ(fi.storedFaultBits(0x503f), 1u);
    EXPECT_EQ(fi.storedFaultBits(0x5040), 0u);
}

TEST(FaultInjector, ChunkFaultHitsEveryBlock)
{
    FaultInjector fi(quietConfig());
    fi.injectChunkFault(0x8000);
    EXPECT_EQ(fi.report().chunk_faults, 1u);
    for (unsigned b = 0; b < kChunkBytes / kLineBytes; ++b) {
        EXPECT_GE(fi.storedFaultBits(0x8000 + b * kLineBytes), 3u)
            << "block " << b;
    }
    EXPECT_EQ(fi.pendingFaultyBlocks(), kChunkBytes / kLineBytes);
}

TEST(FaultInjector, EccOffMakesDetectedSilent)
{
    FaultConfig cfg = quietConfig();
    cfg.ecc = false;
    FaultInjector fi(cfg);
    fi.inject(0x6000, 2, false);
    EXPECT_EQ(fi.onRead(0x6000, false), FaultOutcome::kSilent);
    EXPECT_EQ(fi.report().detected_uncorrectable, 0u);
    EXPECT_EQ(fi.report().silent_corruptions, 1u);
}

TEST(FaultInjector, RatedCampaignIsDeterministic)
{
    FaultConfig cfg;
    cfg.seed = 0xfeed;
    cfg.data_bit_rate = 1e-5;
    cfg.meta_bit_rate = 1e-5;
    cfg.chunk_fault_rate = 1e-4;
    cfg.double_bit_frac = 0.2;

    auto campaign = [&cfg]() {
        FaultInjector fi(cfg);
        for (unsigned i = 0; i < 20000; ++i) {
            Addr a = Addr(i % 512) * kLineBytes;
            fi.onRead(a, /*metadata=*/(i % 7) == 0);
            if (i % 5 == 0)
                fi.scrub(a);
        }
        return fi.report();
    };

    ReliabilityReport a = campaign();
    ReliabilityReport b = campaign();
    EXPECT_TRUE(a == b);
    EXPECT_GT(a.injected(), 0u);
    EXPECT_GT(a.corrected + a.detected_uncorrectable +
                  a.silent_corruptions,
              0u);
}

TEST(FaultInjector, DifferentSeedsDiverge)
{
    FaultConfig cfg;
    cfg.data_bit_rate = 1e-5;
    cfg.seed = 1;
    FaultInjector a(cfg);
    cfg.seed = 2;
    FaultInjector b(cfg);
    for (unsigned i = 0; i < 50000; ++i) {
        a.onRead(Addr(i) * kLineBytes, false);
        b.onRead(Addr(i) * kLineBytes, false);
    }
    EXPECT_FALSE(a.report() == b.report());
}

TEST(FaultInjector, RatesEnabledGate)
{
    FaultConfig cfg;
    EXPECT_FALSE(cfg.rates_enabled());
    cfg.chunk_fault_rate = 1e-9;
    EXPECT_TRUE(cfg.rates_enabled());
}

TEST(ReliabilityReport, MergeIntoStatGroup)
{
    FaultInjector fi(quietConfig());
    fi.inject(0x1000, 1, false);
    fi.onRead(0x1000, false);
    StatGroup sg{"fault"};
    fi.report().mergeInto(sg);
    EXPECT_EQ(sg.get("corrected"), 1u);
    EXPECT_EQ(sg.get("single_bit_faults"), 1u);
}

TEST(ReliabilityReport, SummaryMentionsKeyCounters)
{
    FaultInjector fi(quietConfig());
    fi.inject(0x1000, 2, false);
    fi.onRead(0x1000, false);
    std::string s = fi.report().summary();
    EXPECT_NE(s.find("detected"), std::string::npos);
}

TEST(FaultHooks, LatchesWorstOutcome)
{
    FaultInjector fi(quietConfig());
    FaultHooks hooks;
    hooks.attach(&fi);
    fi.inject(0x1000, 1, false);
    fi.inject(0x1040, 2, false);
    hooks.onCriticalRead(0x1000);
    hooks.onCriticalRead(0x1040);
    EXPECT_EQ(hooks.takePending(), FaultOutcome::kDetected);
    // take resets the latch
    EXPECT_EQ(hooks.takePending(), FaultOutcome::kClean);
}

TEST(FaultHooks, SuppressScopeMasksExposure)
{
    FaultInjector fi(quietConfig());
    FaultHooks hooks;
    hooks.attach(&fi);
    fi.inject(0x1000, 2, false);
    {
        FaultHooks::SuppressScope guard(hooks);
        hooks.onCriticalRead(0x1000);
        EXPECT_EQ(hooks.takePending(), FaultOutcome::kClean);
    }
    hooks.onCriticalRead(0x1000);
    EXPECT_EQ(hooks.takePending(), FaultOutcome::kDetected);
}

TEST(FaultHooks, PoisonRegistry)
{
    FaultHooks hooks;
    Addr line = Addr(7) * kPageBytes + 3 * kLineBytes;
    EXPECT_FALSE(hooks.linePoisoned(line));
    hooks.poisonLine(line);
    EXPECT_TRUE(hooks.linePoisoned(line));
    hooks.clearLinePoison(line);
    EXPECT_FALSE(hooks.linePoisoned(line));

    hooks.poisonPage(7);
    hooks.poisonLine(line);
    EXPECT_TRUE(hooks.pagePoisoned(7));
    hooks.clearPagePoison(7);
    EXPECT_FALSE(hooks.pagePoisoned(7));
    EXPECT_FALSE(hooks.linePoisoned(line)); // cleared with the page
}
