/**
 * @file
 * Tests for the 64 B metadata entry codec (Sec. III, Fig. 3).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "meta/metadata_entry.h"

using namespace compresso;

namespace {

MetadataEntry
randomEntry(Rng &rng)
{
    MetadataEntry m;
    m.valid = rng.chance(0.9);
    m.zero = rng.chance(0.2);
    m.compressed = rng.chance(0.7);
    m.chunks = uint8_t(rng.below(kChunksPerPage + 1));
    m.free_space = uint16_t(rng.below(4096));
    m.inflate_count = uint8_t(rng.below(kMaxInflatedLines + 1));
    for (auto &f : m.mpfn)
        f = uint32_t(rng.below(1u << 28));
    for (auto &c : m.line_code)
        c = uint8_t(rng.below(4));
    for (auto &l : m.inflate_line)
        l = uint8_t(rng.below(kLinesPerPage));
    return m;
}

} // namespace

TEST(MetadataEntry, DefaultIsInvalid)
{
    MetadataEntry m;
    EXPECT_FALSE(m.valid);
    EXPECT_EQ(m.chunks, 0);
    for (auto f : m.mpfn)
        EXPECT_EQ(f, kNoChunk);
}

TEST(MetadataEntry, PackIsExactly64Bytes)
{
    MetadataEntry m;
    auto raw = m.pack();
    EXPECT_EQ(raw.size(), kMetadataEntryBytes);
}

TEST(MetadataEntry, RoundTripDefault)
{
    MetadataEntry m, out;
    ASSERT_TRUE(MetadataEntry::unpack(m.pack(), out));
    EXPECT_EQ(out.valid, m.valid);
    EXPECT_EQ(out.chunks, m.chunks);
    EXPECT_EQ(out.mpfn, m.mpfn);
}

TEST(MetadataEntry, RoundTripRandom)
{
    Rng rng(77);
    for (int iter = 0; iter < 300; ++iter) {
        MetadataEntry m = randomEntry(rng);
        MetadataEntry out;
        ASSERT_TRUE(MetadataEntry::unpack(m.pack(), out));
        EXPECT_EQ(out.valid, m.valid);
        EXPECT_EQ(out.zero, m.zero);
        EXPECT_EQ(out.compressed, m.compressed);
        EXPECT_EQ(out.chunks, m.chunks);
        EXPECT_EQ(out.free_space, m.free_space);
        EXPECT_EQ(out.inflate_count, m.inflate_count);
        EXPECT_EQ(out.mpfn, m.mpfn);
        EXPECT_EQ(out.line_code, m.line_code);
        EXPECT_EQ(out.inflate_line, m.inflate_line);
    }
}

TEST(MetadataEntry, FirstHalfSufficesForControlAndPointers)
{
    // The half-entry optimization caches only the first 32 B; control
    // state and MPFNs must decode from it alone.
    Rng rng(78);
    MetadataEntry m = randomEntry(rng);
    auto raw = m.pack();
    // Zero the second half and re-decode.
    for (size_t i = 32; i < 64; ++i)
        raw[i] = 0;
    MetadataEntry out;
    ASSERT_TRUE(MetadataEntry::unpack(raw, out));
    EXPECT_EQ(out.valid, m.valid);
    EXPECT_EQ(out.chunks, m.chunks);
    EXPECT_EQ(out.free_space, m.free_space);
    EXPECT_EQ(out.mpfn, m.mpfn);
}

TEST(MetadataEntry, UnpackRejectsBadCounts)
{
    MetadataEntry m;
    m.chunks = 8;
    m.inflate_count = 17;
    auto raw = m.pack();
    MetadataEntry out;
    EXPECT_TRUE(MetadataEntry::unpack(raw, out));

    // Forge chunks = 9 (bits 3..6 of byte 0; layout: v z c cccc ...).
    MetadataEntry bad;
    bad.chunks = 9;
    EXPECT_FALSE(MetadataEntry::unpack(bad.pack(), out));
}

TEST(MetadataEntry, HalfCacheable)
{
    MetadataEntry m;
    EXPECT_TRUE(m.halfCacheable()); // invalid
    m.valid = true;
    m.zero = true;
    EXPECT_TRUE(m.halfCacheable()); // zero page
    m.zero = false;
    m.compressed = false;
    EXPECT_TRUE(m.halfCacheable()); // uncompressed page
    m.compressed = true;
    EXPECT_FALSE(m.halfCacheable()); // needs line codes
}

TEST(MetadataEntry, StorageOverheadIsOnePointSixPercent)
{
    // Sec. III: 64 B per 4 KB page = 1.5625%.
    double overhead = double(kMetadataEntryBytes) / double(kPageBytes);
    EXPECT_NEAR(overhead, 0.016, 0.001);
}
