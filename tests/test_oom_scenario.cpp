/**
 * @file
 * End-to-end out-of-memory scenario (Sec. V-B): a machine provisioned
 * for ~2x compression whose data turns incompressible, rescued by the
 * balloon driver without any OS compression-awareness.
 */

#include <gtest/gtest.h>

#include "core/compresso_controller.h"
#include "os/balloon.h"
#include "workloads/datagen.h"

using namespace compresso;

namespace {

void
writePage(CompressoController &mc, PageNum page, DataClass cls,
          uint64_t salt)
{
    Line data;
    for (unsigned l = 0; l < kLinesPerPage; ++l) {
        generateLine(cls, Rng::mix(page, l, salt), data);
        McTrace tr;
        mc.writebackLine(Addr(page) * kPageBytes + l * kLineBytes, data,
                         tr);
    }
}

} // namespace

TEST(OomScenario, BalloonRescuesOvercommit)
{
    // 2 MB installed; promise the OS 4 MB (1024 pages).
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(2) << 20;
    CompressoController mc(cfg);
    SimOs os(1024);
    BalloonDriver balloon(os, mc);

    // Phase 1: 700 compressible pages fit easily.
    for (PageNum p = 0; p < 700; ++p) {
        os.touch(p, true);
        writePage(mc, p, DataClass::kDeltaInt, 1);
    }
    EXPECT_LT(mc.mpaDataBytes(), cfg.installed_bytes / 2);

    // Phase 2: a hot subset turns incompressible; watch free space.
    uint64_t rescued = 0;
    for (PageNum p = 0; p < 300; ++p) {
        os.touch(p, true);
        writePage(mc, p, DataClass::kRandom, 2);
        uint64_t free_chunks =
            (cfg.installed_bytes - mc.mpaDataBytes()) / kChunkBytes;
        rescued += balloon.balance(free_chunks,
                                   /*reserve_chunks=*/2048);
    }

    // The balloon had to reclaim, no machine OOM occurred, and the
    // incompressible data is intact.
    EXPECT_GT(rescued, 0u);
    EXPECT_EQ(mc.stats().get("machine_oom"), 0u);
    EXPECT_LE(mc.mpaDataBytes(), cfg.installed_bytes);

    // Recently-written pages are MRU and thus never balloon victims;
    // colder pages may legitimately have been reclaimed (they read
    // zero after a re-fault, checked in the next test).
    Line expect, got;
    for (PageNum p : {PageNum(297), PageNum(298), PageNum(299)}) {
        for (unsigned l : {0u, 31u, 63u}) {
            generateLine(DataClass::kRandom, Rng::mix(p, l, 2), expect);
            McTrace tr;
            mc.fillLine(Addr(p) * kPageBytes + l * kLineBytes, got, tr);
            ASSERT_EQ(got, expect) << p << ":" << l;
        }
    }
}

TEST(OomScenario, ReclaimedPagesReadZeroAfterRefault)
{
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(2) << 20;
    CompressoController mc(cfg);
    SimOs os(256);
    BalloonDriver balloon(os, mc);

    for (PageNum p = 0; p < 64; ++p) {
        os.touch(p, true);
        writePage(mc, p, DataClass::kRandom, 3);
    }
    uint64_t n = balloon.inflate(16);
    ASSERT_GT(n, 0u);

    // A ballooned-away page was invalidated in the controller: the
    // next fault-in starts from zeros (the OS swapped it; from the
    // hardware's view the OSPA page is fresh).
    Line got;
    McTrace tr;
    mc.fillLine(Addr(0) * kPageBytes, got, tr); // page 0 was coldest
    EXPECT_TRUE(isZeroLine(got));
}

TEST(OomScenario, DeflateRestoresBudget)
{
    CompressoConfig cfg;
    cfg.installed_bytes = uint64_t(1) << 20;
    CompressoController mc(cfg);
    SimOs os(128);
    BalloonDriver balloon(os, mc);
    for (PageNum p = 0; p < 64; ++p)
        os.touch(p, true);

    uint64_t before = os.budget();
    balloon.inflate(8);
    EXPECT_EQ(os.budget(), before - 8);
    balloon.deflate(8);
    EXPECT_EQ(os.budget(), before);
}
